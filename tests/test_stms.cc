/**
 * @file
 * Unit tests for the STMS baseline: recording, single-address
 * lookup, stream replay, sampling, serial-trip accounting, and
 * stream-end detection.
 */

#include <gtest/gtest.h>

#include "prefetch/stms.h"
#include "test_util.h"

namespace domino
{
namespace
{

using test::MiniSim;
using test::RecordingSink;

TemporalConfig
alwaysSampleConfig(unsigned degree = 1)
{
    TemporalConfig cfg;
    cfg.degree = degree;
    cfg.samplingProb = 1.0;
    return cfg;
}

TEST(Stms, NoPrefetchWithoutHistory)
{
    StmsPrefetcher pf(alwaysSampleConfig());
    RecordingSink sink;
    TriggerEvent e;
    e.line = 100;
    pf.onTrigger(e, sink);
    EXPECT_TRUE(sink.issues.empty());
}

TEST(Stms, ReplaysRecordedSequence)
{
    StmsPrefetcher pf(alwaysSampleConfig(2));
    RecordingSink sink;
    // Record A B C D, then trigger A again: B and C should be
    // prefetched (degree 2) after a 2-trip stream start.
    for (LineAddr l : {10, 11, 12, 13}) {
        TriggerEvent e;
        e.line = l;
        pf.onTrigger(e, sink);
    }
    sink.issues.clear();
    TriggerEvent e;
    e.line = 10;
    pf.onTrigger(e, sink);
    ASSERT_EQ(sink.issues.size(), 2u);
    EXPECT_EQ(sink.issues[0].line, 11u);
    EXPECT_EQ(sink.issues[1].line, 12u);
    EXPECT_EQ(sink.issues[0].metadataTrips, 2u);
    EXPECT_EQ(pf.streamsStarted(), 1u);
}

TEST(Stms, LookupUsesLastOccurrence)
{
    StmsPrefetcher pf(alwaysSampleConfig(1));
    RecordingSink sink;
    // A followed by B, later A followed by C: lookup must pick the
    // most recent occurrence (C).
    for (LineAddr l : {10, 20, 99, 10, 30, 98}) {
        TriggerEvent e;
        e.line = l;
        pf.onTrigger(e, sink);
    }
    sink.issues.clear();
    TriggerEvent e;
    e.line = 10;
    pf.onTrigger(e, sink);
    ASSERT_FALSE(sink.issues.empty());
    EXPECT_EQ(sink.issues[0].line, 30u);
}

TEST(Stms, PrefetchHitAdvancesStream)
{
    TemporalConfig cfg = alwaysSampleConfig(1);
    StmsPrefetcher pf(cfg);
    MiniSim sim(pf);
    // Train a 6-long stream twice; on the third replay the tail
    // must be covered.
    const std::vector<LineAddr> stream = {1, 2, 3, 4, 5, 6};
    sim.run(stream);
    sim.run(stream);
    const std::uint64_t covered_before = sim.covered();
    sim.run(stream);
    EXPECT_GE(sim.covered() - covered_before, 4u);
}

TEST(Stms, SamplingZeroDisablesIndex)
{
    TemporalConfig cfg;
    cfg.degree = 4;
    cfg.samplingProb = 0.0;
    StmsPrefetcher pf(cfg);
    MiniSim sim(pf);
    const std::vector<LineAddr> stream = {1, 2, 3, 4, 5, 6};
    for (int r = 0; r < 5; ++r)
        sim.run(stream);
    EXPECT_EQ(sim.covered(), 0u);
}

TEST(Stms, MetadataTrafficAccounted)
{
    StmsPrefetcher pf(alwaysSampleConfig(1));
    RecordingSink sink;
    for (LineAddr l = 0; l < 100; ++l) {
        TriggerEvent e;
        e.line = l;
        pf.onTrigger(e, sink);
    }
    const MetadataStats m = pf.metadata();
    // Index updates (1 read + 1 write each at sampling 1.0) plus
    // index lookups (1 read per miss) plus HT row writes.
    EXPECT_GE(m.readBlocks, 200u);
    EXPECT_GE(m.writeBlocks, 100u);
}

TEST(Stms, HistoryCapacityLimitsReplay)
{
    TemporalConfig cfg = alwaysSampleConfig(4);
    cfg.htEntries = 32;  // tiny history
    StmsPrefetcher pf(cfg);
    MiniSim sim(pf);
    const std::vector<LineAddr> stream = {1, 2, 3, 4, 5, 6, 7, 8};
    sim.run(stream);
    // Push the stream out of the retention window.
    for (LineAddr l = 100; l < 164; ++l)
        sim.demand(l);
    const std::uint64_t covered_before = sim.covered();
    sim.run(stream);
    // The old occurrence fell out of the 32-entry window; its
    // pointer is stale, so (at most) nothing is covered.
    EXPECT_LE(sim.covered() - covered_before, 1u);
}

TEST(Stms, StreamEndDetectionStopsReplay)
{
    // Recorded: [1..4] boundary [50..53].  A replay of [1..4] with
    // end detection must not run into the 50s.
    TemporalConfig cfg = alwaysSampleConfig(4);
    cfg.endDetection = true;
    StmsPrefetcher pf(cfg);
    MiniSim sim(pf);
    const std::vector<LineAddr> a = {1, 2, 3, 4};
    const std::vector<LineAddr> b = {50, 51, 52, 53};
    // Unique cold misses separate the streams each round, so the
    // miss-after-covered-run heuristic marks a boundary after `a`
    // once `a` is covered (from round 2 on).
    LineAddr cold = 100000;
    for (int r = 0; r < 4; ++r) {
        sim.run(a);
        sim.demand(cold++);
        sim.run(b);
        sim.demand(cold++);
    }
    // After training, replay `a` alone and inspect what was issued
    // beyond it.
    RecordingSink probe;
    TriggerEvent e;
    e.line = 1;
    pf.onTrigger(e, probe);
    for (const auto &i : probe.issues)
        EXPECT_LT(i.line, 50u)
            << "replay crossed a recorded context boundary";
}

TEST(Stms, ContinuationTripsCheaperThanStart)
{
    StmsPrefetcher pf(alwaysSampleConfig(1));
    RecordingSink sink;
    for (LineAddr l : {10, 11, 12, 13, 14, 15}) {
        TriggerEvent e;
        e.line = l;
        pf.onTrigger(e, sink);
    }
    sink.issues.clear();
    TriggerEvent e;
    e.line = 10;
    pf.onTrigger(e, sink);
    ASSERT_EQ(sink.issues.size(), 1u);
    const std::uint32_t sid = sink.issues[0].streamId;
    EXPECT_EQ(sink.issues[0].metadataTrips, 2u);

    // Prefetch hit: continuation costs 0 trips (PointBuf).
    TriggerEvent hit;
    hit.line = 11;
    hit.wasPrefetchHit = true;
    hit.hitStreamId = sid;
    sink.issues.clear();
    pf.onTrigger(hit, sink);
    ASSERT_EQ(sink.issues.size(), 1u);
    EXPECT_EQ(sink.issues[0].line, 12u);
    EXPECT_EQ(sink.issues[0].metadataTrips, 0u);
}

TEST(Stms, StreamReplacementDropsBuffered)
{
    TemporalConfig cfg = alwaysSampleConfig(1);
    cfg.activeStreams = 1;  // single slot: every start replaces
    StmsPrefetcher pf(cfg);
    RecordingSink sink;
    for (LineAddr l : {10, 11, 12, 20, 21, 22}) {
        TriggerEvent e;
        e.line = l;
        pf.onTrigger(e, sink);
    }
    sink.drops.clear();
    TriggerEvent e1;
    e1.line = 10;
    pf.onTrigger(e1, sink);  // starts stream 1
    TriggerEvent e2;
    e2.line = 20;
    pf.onTrigger(e2, sink);  // replaces it
    EXPECT_FALSE(sink.drops.empty());
}

} // anonymous namespace
} // namespace domino
