#include "common/prng.h"
void f(unsigned long seed, unsigned core) {
    domino::Prng rng(deriveCoreSeed(seed, core));
    domino::Prng salted(seed ^ 0xe17);
    (void)rng; (void)salted;
}
