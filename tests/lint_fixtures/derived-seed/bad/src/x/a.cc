#include "common/prng.h"
void f(unsigned long seed, unsigned core) {
    domino::Prng rng(seed + core);
    (void)rng;
}
