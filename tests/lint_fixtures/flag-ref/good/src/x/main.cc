#include "common/cli.h"
int run(const domino::CliArgs &args) {
    return static_cast<int>(args.getU64("depth", 1));
}
