int *leak() { return new int(7); }
