#include <memory>
// A string mentioning "new thing" stays legal; so does = delete.
struct A { A(const A &) = delete; };
std::unique_ptr<int> own() { return std::make_unique<int>(7); }
