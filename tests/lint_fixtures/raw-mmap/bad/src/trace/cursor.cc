#include <sys/mman.h>

void *
mapTrace(int fd, unsigned long bytes)
{
    return mmap(nullptr, bytes, 0x1, 0x1, fd, 0);
}
