// The one owner of the raw mapping primitives (the real tree's
// trace/mapped_file.h wrapper).
#include <sys/mman.h>

void *
mapTrace(int fd, unsigned long bytes)
{
    return mmap(nullptr, bytes, 0x1, 0x1, fd, 0);
}
