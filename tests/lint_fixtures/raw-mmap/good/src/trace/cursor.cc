#include "trace/mapped_file.h"

// Identifiers merely containing a banned name must not match.
unsigned long
mmapHits(unsigned long base)
{
    return base + 1;
}
