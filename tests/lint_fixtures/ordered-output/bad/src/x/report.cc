#include <cstdio>
#include <unordered_map>
void emit(const std::unordered_map<int, int> &counts_in) {
    std::unordered_map<int, int> counts = counts_in;
    for (const auto &kv : counts)
        std::printf("%d,%d\n", kv.first, kv.second);
}
