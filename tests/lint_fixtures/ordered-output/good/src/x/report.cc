#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>
void emit(const std::unordered_map<int, int> &counts) {
    std::vector<std::pair<int, int>> rows(counts.size());
    // Point lookups are fine; only iteration is order-dependent.
    std::size_t i = 0;
    for (int key = 0; key < 4; ++key)
        if (counts.count(key))
            rows[i++] = {key, counts.at(key)};
    std::sort(rows.begin(), rows.end());
    for (const auto &kv : rows)
        std::printf("%d,%d\n", kv.first, kv.second);
}
