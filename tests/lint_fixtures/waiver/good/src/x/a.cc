// conventions: allow-file(raw-new) -- fixture exercising a justified
// waiver: the raw new below is deliberate.
int *g() { return new int(3); }
