// conventions: allow-file(no-such-rule) -- typo'd rule name
int f();
