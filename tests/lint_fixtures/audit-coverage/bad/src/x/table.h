#include <vector>
class BadTable {
  public:
    void push(int v) { vals.push_back(v); }
  private:
    std::vector<int> vals;
};
