#include <string>
#include <vector>
class GoodTable {
  public:
    void push(int v) { vals.push_back(v); }
    std::string audit() const { return ""; }
  private:
    std::vector<int> vals;
};
// A stateless class needs no audit.
class Stateless {
  public:
    int f() const { return 1; }
};
