int f();
