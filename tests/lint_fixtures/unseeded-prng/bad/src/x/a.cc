#include <random>
void f() { std::mt19937 gen; (void)gen; }
