#include "common/prng.h"
void f() { domino::Prng rng(0x1234); (void)rng; }
