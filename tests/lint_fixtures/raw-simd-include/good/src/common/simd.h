// The one place raw intrinsic headers are allowed: the dispatch
// header itself.
#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace domino::simd
{
unsigned long matchZero(const unsigned char *p);
} // namespace domino::simd
