#include "common/simd.h"

inline unsigned long probe(const unsigned char *p)
{
    return domino::simd::matchZero(p);
}
