#include <immintrin.h>

inline int probe(const long long *p)
{
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    return _mm_movemask_epi8(v);
}
