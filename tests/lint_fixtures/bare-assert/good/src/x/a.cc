#include "common/check.h"
void f(int x) { CHECK_GT(x, 0); }
static_assert(sizeof(int) == 4);
