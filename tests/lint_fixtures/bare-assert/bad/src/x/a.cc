#include <cassert>
void f(int x) { assert(x > 0); }
