using Addr = unsigned long;
