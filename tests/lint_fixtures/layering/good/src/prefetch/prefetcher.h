#include "common/types.h"
struct P {};
