#include "common/types.h"
#include "prefetch/prefetcher.h"
int f();
