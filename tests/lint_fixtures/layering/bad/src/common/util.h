#include "sim/simulator.h"
int f();
