struct C {
    unsigned sets = 64;
    unsigned idx(unsigned long line) const { return line % sets; }
};
