struct C {
    unsigned setMask = 63;
    unsigned idx(unsigned long line) const { return line & setMask; }
};
