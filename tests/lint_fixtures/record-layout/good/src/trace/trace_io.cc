constexpr unsigned traceHeaderBytes = 20;
constexpr unsigned traceRecordBytes = 17;
static_assert(traceHeaderBytes == 20, "TRACE_FORMAT.md header");
static_assert(traceRecordBytes == 17, "TRACE_FORMAT.md record");
