unsigned readHeader(const unsigned char *p);
