/**
 * @file
 * Unit tests for the circular History Table and the shared
 * active-stream machinery (StreamTable, refillFromHistory).
 */

#include <gtest/gtest.h>

#include "prefetch/history.h"
#include "prefetch/stream_tracker.h"
#include "test_util.h"

namespace domino
{
namespace
{

TEST(CircularHistory, AppendAndRead)
{
    CircularHistory ht(16, 4);
    EXPECT_EQ(ht.append(100), 0u);
    EXPECT_EQ(ht.append(101), 1u);
    EXPECT_EQ(ht.size(), 2u);
    EXPECT_TRUE(ht.readable(0));
    EXPECT_FALSE(ht.readable(2));  // live edge not yet written
    EXPECT_EQ(ht.at(0), 100u);
    EXPECT_EQ(ht.at(1), 101u);
}

TEST(CircularHistory, RetentionWindow)
{
    CircularHistory ht(8, 4);
    for (LineAddr l = 0; l < 20; ++l)
        ht.append(l);
    // Only the last 8 positions remain readable.
    EXPECT_FALSE(ht.readable(11));
    EXPECT_TRUE(ht.readable(12));
    EXPECT_TRUE(ht.readable(19));
    EXPECT_EQ(ht.at(12), 12u);
    EXPECT_EQ(ht.at(19), 19u);
}

TEST(CircularHistory, RowGeometry)
{
    CircularHistory ht(48, 12);
    EXPECT_EQ(ht.addrsPerRow(), 12u);
    EXPECT_EQ(ht.rowOf(0), 0u);
    EXPECT_EQ(ht.rowOf(11), 0u);
    EXPECT_EQ(ht.rowOf(12), 1u);
    EXPECT_EQ(ht.nextRowStart(0), 12u);
    EXPECT_EQ(ht.nextRowStart(13), 24u);
}

TEST(CircularHistory, StreamStartFlags)
{
    CircularHistory ht(16, 4);
    ht.append(1, false);
    ht.append(2, true);
    ht.append(3, false);
    EXPECT_FALSE(ht.startsStream(0));
    EXPECT_TRUE(ht.startsStream(1));
    EXPECT_FALSE(ht.startsStream(2));
}

TEST(StreamTable, AllocateReplacesLruAndDrops)
{
    StreamTable table(2);
    test::RecordingSink sink;
    ActiveStream &a = table.allocate(1, sink);
    ActiveStream &b = table.allocate(2, sink);
    EXPECT_TRUE(sink.drops.empty());
    table.touch(a);  // b becomes LRU
    (void)b;
    table.allocate(3, sink);
    ASSERT_EQ(sink.drops.size(), 1u);
    EXPECT_EQ(sink.drops[0], 2u);
    EXPECT_NE(table.findById(1), nullptr);
    EXPECT_EQ(table.findById(2), nullptr);
    EXPECT_NE(table.findById(3), nullptr);
}

TEST(StreamTable, FindByIdOnlyValid)
{
    StreamTable table(2);
    test::RecordingSink sink;
    EXPECT_EQ(table.findById(7), nullptr);
    table.allocate(7, sink);
    ASSERT_NE(table.findById(7), nullptr);
    EXPECT_EQ(table.findById(7)->id, 7u);
}

TEST(RefillFromHistory, FillsWantedAmount)
{
    CircularHistory ht(64, 4);
    for (LineAddr l = 100; l < 120; ++l)
        ht.append(l);
    ActiveStream stream;
    stream.valid = true;
    stream.nextPos = 5;
    MetadataStats meta;
    const unsigned rows =
        refillFromHistory(ht, stream, 4, 0, meta, false);
    // Reading the row containing position 5 yields positions 5..7.
    EXPECT_GE(stream.pending.size(), 3u);
    EXPECT_EQ(stream.pending.front(), 105u);
    EXPECT_EQ(rows, meta.readBlocks);
    EXPECT_GE(rows, 1u);
}

TEST(RefillFromHistory, StopsAtLiveEdge)
{
    CircularHistory ht(64, 4);
    ht.append(1);
    ht.append(2);
    ActiveStream stream;
    stream.valid = true;
    stream.nextPos = 1;
    MetadataStats meta;
    refillFromHistory(ht, stream, 8, 0, meta, false);
    EXPECT_EQ(stream.pending.size(), 1u);  // only position 1
}

TEST(RefillFromHistory, RespectsReplayCap)
{
    CircularHistory ht(64, 4);
    for (LineAddr l = 0; l < 32; ++l)
        ht.append(l);
    ActiveStream stream;
    stream.valid = true;
    stream.nextPos = 0;
    stream.replayed = 6;
    MetadataStats meta;
    refillFromHistory(ht, stream, 16, 8, meta, false);
    // Cap 8 with 6 already replayed: the check is row-granular
    // (a fetched row is consumed whole), so at most one more row
    // is read and no second row follows.
    EXPECT_LE(stream.pending.size(), ht.addrsPerRow());
    EXPECT_EQ(meta.readBlocks, 1u);
}

TEST(RefillFromHistory, StopsAtContextBoundary)
{
    CircularHistory ht(64, 4);
    ht.append(1, false);
    ht.append(2, false);
    ht.append(3, true);  // boundary
    ht.append(4, false);
    ActiveStream stream;
    stream.valid = true;
    stream.nextPos = 0;
    MetadataStats meta;
    refillFromHistory(ht, stream, 8, 0, meta, true);
    EXPECT_EQ(stream.pending.size(), 2u);
    EXPECT_TRUE(stream.ended);
    // A later refill attempt must not resume past the boundary.
    refillFromHistory(ht, stream, 8, 0, meta, true);
    EXPECT_EQ(stream.pending.size(), 2u);
}

TEST(RefillFromHistory, BoundaryIgnoredWhenDisabled)
{
    CircularHistory ht(64, 4);
    ht.append(1, false);
    ht.append(2, true);
    ht.append(3, false);
    ActiveStream stream;
    stream.valid = true;
    stream.nextPos = 0;
    MetadataStats meta;
    refillFromHistory(ht, stream, 3, 0, meta, false);
    EXPECT_EQ(stream.pending.size(), 3u);
    EXPECT_FALSE(stream.ended);
}

} // anonymous namespace
} // namespace domino
