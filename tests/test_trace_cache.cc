/**
 * @file
 * Tests for the generate-once trace cache and its TraceView cursor:
 * single-flight generation under concurrency, byte-identity of
 * cached replay vs. fresh generation, cursor/reset semantics, the
 * memoised miss-sequence plane, failure retry, and the FlatHashMap
 * the flat tables are built on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <memory>
#include <unordered_map>

#include "analysis/coverage.h"
#include "analysis/factory.h"
#include "common/flat_map.h"
#include "common/lru.h"
#include "common/prng.h"
#include "domino/eit.h"
#include "trace/trace_cache.h"
#include "workloads/server_workload.h"
#include "workloads/workload_params.h"

namespace domino
{
namespace
{

WorkloadParams
testWorkload()
{
    WorkloadParams p = serverSuite().front();
    return p;
}

TraceBuffer
smallTrace(std::uint64_t first, std::size_t count)
{
    TraceBuffer t;
    for (std::size_t i = 0; i < count; ++i)
        t.pushRead((first + i) * 64);
    return t;
}

// ---------------------------------------------------------------
// TraceView

TEST(TraceView, EmptyViewIsExhaustedAndAuditsClean)
{
    TraceView view;
    Access a;
    EXPECT_FALSE(view.next(a));
    EXPECT_EQ(view.size(), 0u);
    EXPECT_EQ(view.position(), 0u);
    EXPECT_EQ(view.audit(), "");
}

TEST(TraceView, StreamsSharedBufferAndResets)
{
    auto buf = std::make_shared<const TraceBuffer>(smallTrace(10, 5));
    TraceView view(buf);
    EXPECT_EQ(view.size(), 5u);

    Access a;
    std::vector<Addr> seen;
    while (view.next(a))
        seen.push_back(a.addr);
    ASSERT_EQ(seen.size(), 5u);
    EXPECT_EQ(view.position(), 5u);
    EXPECT_FALSE(view.next(a));
    EXPECT_EQ(view.audit(), "");

    view.reset();
    EXPECT_EQ(view.position(), 0u);
    ASSERT_TRUE(view.next(a));
    EXPECT_EQ(a.addr, seen.front());
}

TEST(TraceView, ViewsShareTheBufferButNotTheCursor)
{
    auto buf = std::make_shared<const TraceBuffer>(smallTrace(7, 4));
    TraceView a_view(buf);
    TraceView b_view(buf);
    EXPECT_EQ(a_view.buffer().get(), b_view.buffer().get());

    Access a;
    ASSERT_TRUE(a_view.next(a));
    ASSERT_TRUE(a_view.next(a));
    EXPECT_EQ(a_view.position(), 2u);
    EXPECT_EQ(b_view.position(), 0u);
}

// ---------------------------------------------------------------
// TraceCache

TEST(TraceCache, GeneratesOncePerKey)
{
    TraceCache cache;
    std::atomic<int> calls{0};
    const auto gen = [&] {
        ++calls;
        return smallTrace(1, 8);
    };
    const auto first = cache.get("k", gen);
    const auto second = cache.get("k", gen);
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.generations(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(TraceCache, DistinctKeysGenerateSeparately)
{
    TraceCache cache;
    std::atomic<int> calls{0};
    const auto gen = [&] {
        ++calls;
        return smallTrace(1, 4);
    };
    cache.get("a", gen);
    cache.get("b", gen);
    EXPECT_EQ(calls.load(), 2);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(TraceCache, SingleFlightUnderEightThreads)
{
    TraceCache cache;
    std::atomic<int> calls{0};
    constexpr int threads = 8;
    constexpr int keys = 4;
    std::vector<std::thread> pool;
    std::vector<std::shared_ptr<const TraceBuffer>>
        results(threads * keys);
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (int k = 0; k < keys; ++k) {
                results[t * keys + k] = cache.get(
                    "key" + std::to_string(k), [&, k] {
                        ++calls;
                        return smallTrace(
                            static_cast<std::uint64_t>(k) * 100, 64);
                    });
            }
        });
    }
    for (auto &th : pool)
        th.join();

    // Exactly one generation per key, and all requesters of one key
    // share one buffer instance.
    EXPECT_EQ(calls.load(), keys);
    EXPECT_EQ(cache.generations(),
              static_cast<std::uint64_t>(keys));
    for (int k = 0; k < keys; ++k) {
        for (int t = 1; t < threads; ++t) {
            EXPECT_EQ(results[t * keys + k].get(),
                      results[0 * keys + k].get());
        }
    }
}

TEST(TraceCache, ViewIsByteIdenticalToFreshServerWorkload)
{
    const WorkloadParams wl = testWorkload();
    const std::uint64_t seed = 42;
    const std::uint64_t limit = 20'000;

    TraceCache cache;
    TraceView cached = cache.view(
        wl.cacheKey(seed, limit),
        [&] { return generateTrace(wl, seed, limit); });

    ServerWorkload fresh(wl, seed, limit);
    Access a, b;
    std::size_t n = 0;
    while (true) {
        const bool more_cached = cached.next(a);
        const bool more_fresh = fresh.next(b);
        ASSERT_EQ(more_cached, more_fresh) << "length mismatch at "
                                           << n;
        if (!more_cached)
            break;
        ASSERT_EQ(a.addr, b.addr) << "addr diverged at " << n;
        ASSERT_EQ(a.pc, b.pc) << "pc diverged at " << n;
        ASSERT_EQ(a.isWrite, b.isWrite) << "kind diverged at " << n;
        ++n;
    }
    EXPECT_EQ(n, cached.size());
}

TEST(TraceCache, MissSequenceIsMemoisedAndMatchesDirectFilter)
{
    const WorkloadParams wl = testWorkload();
    const std::uint64_t seed = 7;
    const std::uint64_t limit = 20'000;
    const std::string key = wl.cacheKey(seed, limit);

    TraceCache cache;
    std::atomic<int> calls{0};
    const auto gen = [&] {
        ++calls;
        TraceView src = cache.view(
            key, [&] { return generateTrace(wl, seed, limit); });
        return baselineMissSequence(src);
    };
    const auto first = cache.missSequence("miss:" + key, gen);
    const auto second = cache.missSequence("miss:" + key, gen);
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(first.get(), second.get());

    ServerWorkload fresh(wl, seed, limit);
    EXPECT_EQ(*first, baselineMissSequence(fresh));
}

TEST(TraceCache, FailedGenerationIsRetriedNotCached)
{
    TraceCache cache;
    std::atomic<int> calls{0};
    const auto failing = [&]() -> TraceBuffer {
        ++calls;
        throw std::runtime_error("generator exploded");
    };
    EXPECT_THROW(cache.get("k", failing), std::runtime_error);
    EXPECT_EQ(cache.size(), 0u);

    // A later request retries and can succeed.
    const auto ok = cache.get("k", [&] {
        ++calls;
        return smallTrace(3, 3);
    });
    EXPECT_EQ(calls.load(), 2);
    ASSERT_TRUE(ok);
    EXPECT_EQ(ok->size(), 3u);
}

TEST(TraceCache, ClearDropsEntriesButKeepsCounters)
{
    TraceCache cache;
    cache.get("k", [] { return smallTrace(1, 2); });
    EXPECT_EQ(cache.size(), 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.generations(), 1u);

    std::atomic<int> calls{0};
    cache.get("k", [&] {
        ++calls;
        return smallTrace(1, 2);
    });
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(cache.generations(), 2u);
}

// ---------------------------------------------------------------
// FlatHashMap (the container under the flattened index tables)

TEST(FlatHashMap, InsertFindAndGrowth)
{
    FlatHashMap<std::uint64_t> map(2);
    constexpr std::uint64_t count = 10'000;
    for (std::uint64_t k = 0; k < count; ++k)
        map[k * 977] = k;
    EXPECT_EQ(map.size(), count);
    EXPECT_EQ(map.audit(), "");
    for (std::uint64_t k = 0; k < count; ++k) {
        const std::uint64_t *v = map.find(k * 977);
        ASSERT_NE(v, nullptr) << "key " << k * 977;
        EXPECT_EQ(*v, k);
    }
    EXPECT_EQ(map.find(977 * count + 1), nullptr);
}

TEST(FlatHashMap, KeyZeroIsAValidKey)
{
    FlatHashMap<std::uint64_t> map;
    EXPECT_EQ(map.find(0), nullptr);
    map[0] = 99;
    ASSERT_NE(map.find(0), nullptr);
    EXPECT_EQ(*map.find(0), 99u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap, OperatorBracketUpdatesInPlace)
{
    FlatHashMap<std::uint64_t> map;
    map[5] = 1;
    map[5] = 2;
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(*map.find(5), 2u);
}

TEST(FlatHashMap, ClearEmptiesButKeepsCapacity)
{
    FlatHashMap<std::uint64_t> map(64);
    for (std::uint64_t k = 1; k <= 10; ++k)
        map[k] = k;
    const std::size_t cap = map.capacity();
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.capacity(), cap);
    EXPECT_EQ(map.find(3), nullptr);
    EXPECT_EQ(map.audit(), "");
}

// ---------------------------------------------------------------
// Flat EIT determinism: the flat pow2-masked row vector must behave
// exactly like a map-based table indexed with a plain modulo.

std::uint64_t
ceilPow2(std::uint64_t x)
{
    std::uint64_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

/** The reference model's super-entry: the AoS node shape the real
 *  table packed into SoA lanes, kept here as the oracle. */
struct RefSuper
{
    LineAddr tag = invalidAddr;
    LruSet<EitEntry> entries;
};

/**
 * Map-based reference EIT: rows live in an unordered_map keyed by
 * `mix64(tag) % rows` (modulo indexing, rows created on demand),
 * each row an LruSet of AoS super-entries.  Shares the row/LRU
 * semantics with the real table, so any divergence isolates the
 * packed SoA storage + mask indexing.
 */
struct ReferenceEit
{
    explicit ReferenceEit(const EitConfig &config)
        : cfg(config), rows(ceilPow2(config.rows ? config.rows : 1))
    {}

    LruSet<RefSuper> &
    rowFor(LineAddr tag)
    {
        return table
            .try_emplace(mix64(tag) % rows,
                         LruSet<RefSuper>(cfg.supersPerRow))
            .first->second;
    }

    void
    update(LineAddr tag, LineAddr next, std::uint64_t pos)
    {
        LruSet<RefSuper> &row = rowFor(tag);
        std::size_t idx = row.find(
            [&](const RefSuper &s) { return s.tag == tag; });
        if (idx == row.size()) {
            RefSuper fresh;
            fresh.tag = tag;
            fresh.entries.setCapacity(cfg.entriesPerSuper);
            row.insert(std::move(fresh));
        } else {
            row.touch(idx);
        }
        RefSuper &super = row.at(0);
        const std::size_t e = super.entries.find(
            [&](const EitEntry &entry) {
                return entry.next == next;
            });
        if (e == super.entries.size()) {
            super.entries.insert(EitEntry{next, pos});
        } else {
            super.entries.at(e).pos = pos;
            super.entries.touch(e);
        }
    }

    const RefSuper *
    lookup(LineAddr tag) const
    {
        const auto it = table.find(mix64(tag) % rows);
        if (it == table.end())
            return nullptr;
        const LruSet<RefSuper> &row = it->second;
        const std::size_t idx = row.find(
            [&](const RefSuper &s) { return s.tag == tag; });
        return idx == row.size() ? nullptr : &row.at(idx);
    }

    EitConfig cfg;
    std::uint64_t rows;
    std::unordered_map<std::uint64_t, LruSet<RefSuper>> table;
};

void
expectSameEntry(EnhancedIndexTable::SuperView got,
                const RefSuper *want, LineAddr tag)
{
    ASSERT_EQ(static_cast<bool>(got), want != nullptr)
        << "tag " << tag;
    if (!want)
        return;
    ASSERT_EQ(got.tag(), want->tag);
    ASSERT_EQ(got.size(), want->entries.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got.next(i), want->entries.at(i).next)
            << "tag " << tag << " entry " << i;
        EXPECT_EQ(got.pos(i), want->entries.at(i).pos)
            << "tag " << tag << " entry " << i;
    }
}

TEST(FlatEit, MatchesMapBasedReferenceAtPow2Geometry)
{
    EitConfig cfg;
    cfg.rows = 1ULL << 10;
    EnhancedIndexTable eit(cfg);
    ReferenceEit ref(cfg);

    Prng rng(0xf1a7);
    constexpr std::uint64_t tag_pool = 1ULL << 12;
    for (std::uint64_t i = 0; i < 50'000; ++i) {
        const LineAddr tag = 1 + rng.below(tag_pool);
        const LineAddr next = 1 + rng.below(tag_pool);
        eit.update(tag, next, i);
        ref.update(tag, next, i);
    }
    for (LineAddr tag = 1; tag <= tag_pool; ++tag)
        expectSameEntry(eit.lookup(tag), ref.lookup(tag), tag);
    EXPECT_EQ(eit.audit(1ULL << 20), "");
}

TEST(FlatEit, NonPow2RowCountRoundsUpAndStillMatches)
{
    EitConfig cfg;
    cfg.rows = 1000;  // rounds up to 1024
    EnhancedIndexTable eit(cfg);
    ReferenceEit ref(cfg);
    EXPECT_EQ(eit.rows(), 1024u);

    Prng rng(0xf1a8);
    for (std::uint64_t i = 0; i < 20'000; ++i) {
        const LineAddr tag = 1 + rng.below(1ULL << 11);
        const LineAddr next = 1 + rng.below(1ULL << 11);
        eit.update(tag, next, i);
        ref.update(tag, next, i);
    }
    for (LineAddr tag = 1; tag <= (1ULL << 11); ++tag)
        expectSameEntry(eit.lookup(tag), ref.lookup(tag), tag);
}

// ---------------------------------------------------------------
// Lockstep coverage runs: runMany() must reproduce separate run()
// calls exactly (the coverage figures rely on this).

TEST(CoverageLockstep, MatchesSeparateRuns)
{
    const WorkloadParams wl = testWorkload();
    const std::uint64_t seed = 11;
    const std::uint64_t limit = 40'000;

    TraceCache cache;
    const std::string key = wl.cacheKey(seed, limit);
    const auto gen = [&] { return generateTrace(wl, seed, limit); };

    FactoryConfig f;
    f.degree = 4;
    f.seed = seed ^ 0xfac;
    const std::vector<std::string> techs{"STMS", "Digram", "Domino"};

    // Separate runs, one fresh view per technique.
    std::vector<CoverageResult> separate;
    for (const std::string &tech : techs) {
        TraceView src = cache.view(key, gen);
        auto pf = makePrefetcher(tech, f);
        CoverageSimulator sim;
        separate.push_back(sim.run(src, pf.get()));
    }

    // One lockstep run over the same trace.
    std::vector<std::unique_ptr<Prefetcher>> owned;
    std::vector<Prefetcher *> roster;
    for (const std::string &tech : techs) {
        owned.push_back(makePrefetcher(tech, f));
        roster.push_back(owned.back().get());
    }
    TraceView src = cache.view(key, gen);
    CoverageSimulator sim;
    const std::vector<CoverageResult> lockstep =
        sim.runMany(src, roster);

    ASSERT_EQ(lockstep.size(), separate.size());
    for (std::size_t i = 0; i < techs.size(); ++i) {
        const CoverageResult &a = lockstep[i];
        const CoverageResult &b = separate[i];
        EXPECT_EQ(a.accesses, b.accesses) << techs[i];
        EXPECT_EQ(a.l1Hits, b.l1Hits) << techs[i];
        EXPECT_EQ(a.covered, b.covered) << techs[i];
        EXPECT_EQ(a.uncovered, b.uncovered) << techs[i];
        EXPECT_EQ(a.issued, b.issued) << techs[i];
        EXPECT_EQ(a.overpredictions, b.overpredictions) << techs[i];
        EXPECT_EQ(a.meanStreamRun(), b.meanStreamRun()) << techs[i];
    }
}

} // anonymous namespace
} // namespace domino
