/**
 * @file
 * Tests for the coverage simulator: metric definitions, the
 * baseline-miss-equality property, trigger-sequence collection,
 * stream-run accounting, and redundant-prefetch filtering.
 */

#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "analysis/factory.h"
#include "prefetch/next_line.h"
#include "workloads/server_workload.h"

namespace domino
{
namespace
{

TraceBuffer
sequentialTrace(std::uint64_t lines)
{
    TraceBuffer t;
    for (LineAddr l = 0; l < lines; ++l)
        t.pushRead(byteOf(l + 1000000));
    t.reset();
    return t;
}

TEST(CoverageSim, BaselineHasNoCoverage)
{
    TraceBuffer t = sequentialTrace(1000);
    CoverageSimulator sim;
    const CoverageResult r = sim.run(t, nullptr);
    EXPECT_EQ(r.covered, 0u);
    EXPECT_EQ(r.uncovered, 1000u);
    EXPECT_EQ(r.accesses, 1000u);
    EXPECT_EQ(r.overpredictions, 0u);
}

TEST(CoverageSim, NextLineCoversSequential)
{
    TraceBuffer t = sequentialTrace(1000);
    NextLinePrefetcher pf(1);
    CoverageSimulator sim;
    const CoverageResult r = sim.run(t, &pf);
    // Every access except the first is covered by next-line.
    EXPECT_EQ(r.covered, 999u);
    EXPECT_EQ(r.uncovered, 1u);
    EXPECT_NEAR(r.coverage(), 0.999, 1e-3);
}

TEST(CoverageSim, L1HitsNeverReachPrefetcher)
{
    // Repeated access to one line: 1 miss, rest L1 hits.
    TraceBuffer t;
    for (int i = 0; i < 100; ++i)
        t.pushRead(0x100000);
    t.reset();
    NextLinePrefetcher pf(1);
    CoverageSimulator sim;
    const CoverageResult r = sim.run(t, &pf);
    EXPECT_EQ(r.l1Hits, 99u);
    EXPECT_EQ(r.baselineMisses(), 1u);
}

TEST(CoverageSim, BaselineMissEquality)
{
    // The file-comment property: covered + uncovered with a
    // prefetcher equals the baseline miss count.
    WorkloadParams p;
    findWorkload("OLTP", p);
    ServerWorkload src1(p, 3, 50000);
    CoverageSimulator base_sim;
    const CoverageResult base = base_sim.run(src1, nullptr);

    FactoryConfig f;
    f.degree = 4;
    auto pf = makePrefetcher("Domino", f);
    ServerWorkload src2(p, 3, 50000);
    CoverageSimulator sim;
    const CoverageResult r = sim.run(src2, pf.get());

    EXPECT_EQ(r.baselineMisses(), base.baselineMisses());
    EXPECT_EQ(r.l1Hits, base.l1Hits);
}

TEST(CoverageSim, TriggerSequenceEqualsBaselineMisses)
{
    WorkloadParams p;
    findWorkload("Web Zeus", p);
    ServerWorkload src(p, 5, 30000);
    CoverageOptions opts;
    opts.collectTriggerSequence = true;
    CoverageSimulator sim(opts);
    const CoverageResult r = sim.run(src, nullptr);
    EXPECT_EQ(sim.triggerSequence().size(), r.baselineMisses());

    ServerWorkload src2(p, 5, 30000);
    const auto misses = baselineMissSequence(src2);
    EXPECT_EQ(misses, sim.triggerSequence());
}

TEST(CoverageSim, StreamRunsRecorded)
{
    TraceBuffer t = sequentialTrace(100);
    NextLinePrefetcher pf(1);
    CoverageSimulator sim;
    const CoverageResult r = sim.run(t, &pf);
    // One long covered run of 99.
    EXPECT_EQ(r.streamRuns.totalCount(), 1u);
    EXPECT_NEAR(r.meanStreamRun(), 99.0, 1e-9);
}

TEST(CoverageSim, RedundantIssuesFiltered)
{
    /** Issues the same line many times. */
    class SpammyPrefetcher : public Prefetcher
    {
      public:
        std::string name() const override { return "Spam"; }
        void
        onTrigger(const TriggerEvent &event,
                  PrefetchSink &sink) override
        {
            for (int i = 0; i < 10; ++i)
                sink.issue(event.line + 1, 0, 0);
        }
    };
    TraceBuffer t = sequentialTrace(100);
    SpammyPrefetcher pf;
    CoverageSimulator sim;
    const CoverageResult r = sim.run(t, &pf);
    // Each line is inserted once despite 10 issue calls (the
    // final access's successor is issued too, never used).
    EXPECT_EQ(r.issued, 100u);
}

TEST(CoverageSim, OverpredictionsCounted)
{
    /** Prefetches a line that is never accessed. */
    class WrongPrefetcher : public Prefetcher
    {
      public:
        std::string name() const override { return "Wrong"; }
        void
        onTrigger(const TriggerEvent &event,
                  PrefetchSink &sink) override
        {
            sink.issue(event.line + 1'000'000, 0, 0);
        }
    };
    TraceBuffer t = sequentialTrace(100);
    WrongPrefetcher pf;
    CoverageSimulator sim;
    const CoverageResult r = sim.run(t, &pf);
    EXPECT_EQ(r.covered, 0u);
    // 100 wrong prefetches, 32 still resident, 68 evicted unused.
    EXPECT_EQ(r.overpredictions, 68u);
}

TEST(CoverageSim, FactoryKnowsAllNames)
{
    FactoryConfig f;
    for (const char *name :
         {"STMS", "Digram", "Domino", "ISB", "VLDP", "NextLine",
          "NLookup", "VLDP+Domino"}) {
        EXPECT_NE(makePrefetcher(name, f), nullptr) << name;
    }
    EXPECT_EQ(makePrefetcher("Bogus", f), nullptr);
}

} // anonymous namespace
} // namespace domino
