/**
 * @file
 * Cross-module property tests: end-to-end determinism, accounting
 * identities, and per-workload sanity bands that every figure
 * harness implicitly relies on.
 */

#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "analysis/factory.h"
#include "sequitur/opportunity.h"
#include "workloads/server_workload.h"

namespace domino
{
namespace
{

constexpr std::uint64_t kAccesses = 100'000;

CoverageResult
runOnce(const std::string &workload, const std::string &tech,
        std::uint64_t seed, double sampling = 0.5)
{
    WorkloadParams wl;
    EXPECT_TRUE(findWorkload(workload, wl));
    FactoryConfig f;
    f.degree = 4;
    f.samplingProb = sampling;
    auto pf = makePrefetcher(tech, f);
    ServerWorkload src(wl, seed, kAccesses);
    CoverageSimulator sim;
    return sim.run(src, pf.get());
}

TEST(Properties, PipelineFullyDeterministic)
{
    const CoverageResult a = runOnce("OLTP", "Domino", 7);
    const CoverageResult b = runOnce("OLTP", "Domino", 7);
    EXPECT_EQ(a.covered, b.covered);
    EXPECT_EQ(a.uncovered, b.uncovered);
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.overpredictions, b.overpredictions);
    EXPECT_EQ(a.metadata.readBlocks, b.metadata.readBlocks);
    EXPECT_EQ(a.metadata.writeBlocks, b.metadata.writeBlocks);
}

TEST(Properties, SeedChangesTraceNotBehaviourBand)
{
    const CoverageResult a = runOnce("Web Zeus", "Domino", 1);
    const CoverageResult b = runOnce("Web Zeus", "Domino", 999);
    // Different sequences...
    EXPECT_NE(a.covered, b.covered);
    // ...statistically equivalent behaviour.
    EXPECT_NEAR(a.coverage(), b.coverage(), 0.06);
}

TEST(Properties, BufferAccountingIdentity)
{
    // inserted == hits + evicted-unused + still-resident, so the
    // residual is bounded by the buffer capacity.
    for (const char *tech : {"STMS", "Domino", "VLDP"}) {
        const CoverageResult r = runOnce("Web Apache", tech, 3);
        ASSERT_GE(r.issued, r.covered + r.overpredictions) << tech;
        EXPECT_LE(r.issued - r.covered - r.overpredictions, 32u)
            << tech;
    }
}

TEST(Properties, SamplingMonotoneInUpdateTraffic)
{
    const CoverageResult low =
        runOnce("OLTP", "Domino", 5, 0.125);
    const CoverageResult high =
        runOnce("OLTP", "Domino", 5, 1.0);
    EXPECT_GT(high.metadata.writeBlocks, low.metadata.writeBlocks);
    // More index state must not reduce coverage.
    EXPECT_GE(high.coverage() + 0.02, low.coverage());
}

class WorkloadBandTest
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadBandTest, OpportunityAndCoverageInBand)
{
    WorkloadParams wl;
    ASSERT_TRUE(findWorkload(GetParam(), wl));
    ServerWorkload src(wl, 1, kAccesses);
    const auto misses = baselineMissSequence(src);
    ASSERT_GT(misses.size(), 5000u);
    const double opp = analyzeOpportunity(misses).coverage();
    // Every suite workload must show substantial-but-imperfect
    // temporal opportunity.
    EXPECT_GT(opp, 0.06) << "opportunity degenerate";
    EXPECT_LT(opp, 0.85) << "opportunity implausibly high";

    const CoverageResult r = runOnce(GetParam(), "Domino", 1);
    EXPECT_GT(r.coverage(), 0.05);
    // A practical prefetcher cannot exceed the oracle by much
    // (small excess possible: the oracle does not count cold
    // first occurrences a prefetcher can luckily cover).
    EXPECT_LT(r.coverage(), opp + 0.12);
}

TEST_P(WorkloadBandTest, TriggerSequenceStableUnderPrefetching)
{
    // The trigger sequence with a prefetcher equals the baseline
    // miss sequence (prefetch-buffer hits fill the same lines),
    // for every workload in the suite.
    WorkloadParams wl;
    ASSERT_TRUE(findWorkload(GetParam(), wl));

    ServerWorkload src1(wl, 2, 30'000);
    const auto baseline = baselineMissSequence(src1);

    FactoryConfig f;
    f.degree = 4;
    auto pf = makePrefetcher("Domino", f);
    ServerWorkload src2(wl, 2, 30'000);
    CoverageOptions opts;
    opts.collectTriggerSequence = true;
    CoverageSimulator sim(opts);
    sim.run(src2, pf.get());
    EXPECT_EQ(sim.triggerSequence(), baseline);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadBandTest,
                         ::testing::ValuesIn(suiteNames()));

} // anonymous namespace
} // namespace domino
