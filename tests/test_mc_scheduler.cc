/**
 * @file
 * Scheduler-equivalence tests for the multi-core substrate: the
 * run-batched production scheduler (linear-scan and index-heap
 * variants) must reproduce the reference min-clock stepper's results
 * exactly -- every counter of every core -- across core counts,
 * metadata charging modes, shared scope, and randomized workloads,
 * and the zero-copy image binding must match the ShardView source
 * binding it replaces.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/factory.h"
#include "common/prng.h"
#include "multicore/multicore_sim.h"
#include "trace/replay_image.h"
#include "trace/trace_interleaver.h"
#include "workloads/server_workload.h"

namespace domino
{
namespace
{

struct RunSpec
{
    std::string tech = "Domino";
    unsigned cores = 4;
    std::uint64_t seed = 1;
    std::uint64_t accesses = 20000;
    bool chargeMetadata = true;
    bool sharedMetadata = false;
    /** Bind the packed image instead of ShardView sources. */
    bool useImage = false;
};

MultiCoreResult
runWith(const RunSpec &spec, McScheduler scheduler)
{
    SystemConfig sys;
    sys.cores = spec.cores;
    sys.llcBytes = 512 * 1024;  // scaled (see bench docs)
    sys.multicore.chargeMetadata = spec.chargeMetadata;
    sys.multicore.sharedMetadata = spec.sharedMetadata;

    WorkloadParams wl;
    findWorkload("OLTP", wl);
    const auto buf = std::make_shared<const TraceBuffer>(
        generateTrace(wl, spec.seed, spec.accesses));
    TraceInterleaver interleaver(buf, sys.cores,
                                 sys.multicore.shardChunk);
    const ReplayImage image(*buf);

    FactoryConfig f;
    f.degree = 4;
    f.samplingProb = 0.5;
    f.seed = spec.seed ^ 0xfac;
    PrefetcherSet set = makePrefetcherSet(
        spec.tech, f, sys.cores,
        spec.sharedMetadata ? MetadataScope::Shared
                            : MetadataScope::Private);

    std::vector<ShardView> shards;
    shards.reserve(sys.cores);
    std::vector<CoreBinding> bindings;
    for (unsigned c = 0; c < sys.cores; ++c) {
        CoreBinding binding;
        if (spec.useImage) {
            binding.image = &image;
            binding.imageCore = c;
        } else {
            shards.push_back(interleaver.shard(c));
            binding.source = &shards.back();
        }
        binding.prefetcher = set.perCore[c];
        binding.mlpFactor = wl.mlpFactor;
        binding.instPerAccess = wl.instPerAccess;
        bindings.push_back(binding);
    }
    MultiCoreSim sim(sys);
    return sim.run(bindings, scheduler);
}

/** Full equality of every observable counter of two runs. */
void
expectIdentical(const MultiCoreResult &a, const MultiCoreResult &b)
{
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t c = 0; c < a.cores.size(); ++c) {
        EXPECT_EQ(a.cores[c].accesses, b.cores[c].accesses);
        EXPECT_EQ(a.cores[c].instructions, b.cores[c].instructions);
        EXPECT_EQ(a.cores[c].cycles, b.cores[c].cycles);
        EXPECT_EQ(a.cores[c].covered, b.cores[c].covered);
        EXPECT_EQ(a.cores[c].uncovered, b.cores[c].uncovered);
        EXPECT_EQ(a.cores[c].lateCovered, b.cores[c].lateCovered);
        EXPECT_EQ(a.cores[c].droppedPrefetches,
                  b.cores[c].droppedPrefetches);
        EXPECT_EQ(a.cores[c].queueCycles, b.cores[c].queueCycles);
        EXPECT_EQ(a.cores[c].channelBytes, b.cores[c].channelBytes);
    }
    EXPECT_EQ(a.traffic.demandBytes, b.traffic.demandBytes);
    EXPECT_EQ(a.traffic.usefulPrefetchBytes,
              b.traffic.usefulPrefetchBytes);
    EXPECT_EQ(a.traffic.incorrectPrefetchBytes,
              b.traffic.incorrectPrefetchBytes);
    EXPECT_EQ(a.traffic.metadataReadBytes,
              b.traffic.metadataReadBytes);
    EXPECT_EQ(a.traffic.metadataUpdateBytes,
              b.traffic.metadataUpdateBytes);
    EXPECT_EQ(a.channelBusyCycles, b.channelBusyCycles);
}

void
expectSchedulerEquivalence(const RunSpec &spec)
{
    SCOPED_TRACE("tech=" + spec.tech +
                 " cores=" + std::to_string(spec.cores) +
                 " seed=" + std::to_string(spec.seed) +
                 " accesses=" + std::to_string(spec.accesses) +
                 " charge=" + std::to_string(spec.chargeMetadata) +
                 " image=" + std::to_string(spec.useImage));
    const MultiCoreResult batched =
        runWith(spec, McScheduler::RunBatched);
    const MultiCoreResult reference =
        runWith(spec, McScheduler::ReferenceMinClock);
    expectIdentical(batched, reference);
}

TEST(McScheduler, BatchedMatchesReferenceAcrossCoreCounts)
{
    // cores < 8 exercises the linear-scan batcher, cores >= 8 the
    // index-heap variant (16/32/64 at many-core fan-out); all must
    // match the reference oracle with metadata charged and with the
    // zero-cost control.
    for (unsigned cores : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        for (bool charge : {true, false}) {
            RunSpec spec;
            spec.cores = cores;
            spec.chargeMetadata = charge;
            expectSchedulerEquivalence(spec);
        }
    }
}

TEST(McScheduler, BatchedMatchesReferenceRandomized)
{
    // Randomized property sweep: seeded draws over (core count,
    // technique, trace seed, trace length, charging, scope, source
    // vs image binding).  Every draw replays bit-for-bit across CI
    // runs because the Prng seed is fixed.
    Prng rng(0x5ced);
    // 16/32/64 put the index-heap batcher under many-core pressure
    // (the bench_manycore_contention regime).
    const unsigned coreChoices[] = {1, 2, 4, 8, 16, 32, 64};
    const char *techChoices[] = {"Domino", "STMS", "ISB", ""};
    for (unsigned trial = 0; trial < 12; ++trial) {
        RunSpec spec;
        spec.cores = coreChoices[rng.below(7)];
        spec.tech = techChoices[rng.below(4)];
        spec.seed = 1 + rng.below(1000);
        spec.accesses = 8000 + rng.below(8000);
        spec.chargeMetadata = rng.below(2) == 0;
        spec.sharedMetadata =
            !spec.tech.empty() && rng.below(2) == 0;
        spec.useImage = rng.below(2) == 0;
        expectSchedulerEquivalence(spec);
    }
}

TEST(McScheduler, ImageBindingMatchesSourceBinding)
{
    // The zero-copy image path must be a pure representation change:
    // identical results to ShardView sources, per scheduler.
    for (unsigned cores : {1u, 4u, 8u}) {
        RunSpec src;
        src.cores = cores;
        RunSpec img = src;
        img.useImage = true;
        SCOPED_TRACE("cores=" + std::to_string(cores));
        expectIdentical(runWith(src, McScheduler::RunBatched),
                        runWith(img, McScheduler::RunBatched));
        expectIdentical(runWith(src, McScheduler::ReferenceMinClock),
                        runWith(img, McScheduler::ReferenceMinClock));
    }
}

} // anonymous namespace
} // namespace domino
