/**
 * @file
 * Tests for the DOMIMAGE spill format (src/trace/replay_spill.*):
 * a spilled-and-reloaded ReplayImage must audit byte-equal to its
 * in-memory source across seeds, the provenance key must round-trip,
 * and every corruption class (magic, version, section table,
 * truncation, flipped payload bytes) must be rejected by the loader
 * without publishing a partial image -- the disk-tier half of the
 * determinism contract (docs/TRACE_FORMAT.md "ReplayImage spill
 * format").
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "trace/replay_image.h"
#include "trace/replay_spill.h"
#include "workloads/server_workload.h"

namespace domino
{

/** Test-only backdoor for corrupting ReplayImage arrays (identical
 *  to the definition in test_replay_image.cc -- the class is the
 *  image's named friend, so each test TU carries the same
 *  definition). */
struct ReplayImageTestPeer
{
    static std::vector<LineAddr> &
    lines(ReplayImage &image)
    {
        return image.lineArr;
    }

    static std::vector<Addr> &
    pcs(ReplayImage &image)
    {
        return image.pcArr;
    }

    static std::vector<std::uint8_t> &
    rws(ReplayImage &image)
    {
        return image.rwArr;
    }
};

namespace
{

TraceBuffer
testTrace(std::uint64_t seed, std::uint64_t accesses)
{
    WorkloadParams wl;
    findWorkload("OLTP", wl);
    return generateTrace(wl, seed, accesses);
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    const std::streamoff bytes = is.tellg();
    is.seekg(0);
    std::vector<char> out(static_cast<std::size_t>(bytes));
    is.read(out.data(), bytes);
    return out;
}

void
spit(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

TEST(ReplaySpill, Fnv1a64ReferenceVectors)
{
    // Reference values of the FNV-1a 64-bit test suite.
    EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
}

TEST(ReplaySpill, RoundTripAuditsByteEqualAcrossSeeds)
{
    const std::string path = "/tmp/domino_test_spill_rt.domimage";
    for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
        const TraceBuffer trace = testTrace(seed, 4000);
        const ReplayImage image(trace);
        ASSERT_TRUE(spillReplayImage(path, image, "key-" +
                                     std::to_string(seed)).ok);
        ReplayImage back;
        std::string key;
        ASSERT_TRUE(loadReplayImage(path, back, &key).ok);
        // The disk-tier determinism contract: byte-for-byte equal.
        EXPECT_EQ(image.auditAgainst(back), "");
        EXPECT_EQ(back.auditAgainst(image), "");
        EXPECT_EQ(back.auditAgainst(trace), "");
        EXPECT_EQ(key, "key-" + std::to_string(seed));
    }
    std::remove(path.c_str());
}

TEST(ReplaySpill, EmptyImageAndEmptyKeyRoundTrip)
{
    const std::string path = "/tmp/domino_test_spill_empty.domimage";
    const ReplayImage empty;
    ASSERT_TRUE(spillReplayImage(path, empty).ok);
    ReplayImage back;
    std::string key = "sentinel";
    ASSERT_TRUE(loadReplayImage(path, back, &key).ok);
    EXPECT_EQ(back.size(), 0u);
    EXPECT_EQ(key, "");
    std::remove(path.c_str());
}

TEST(ReplaySpill, ReadImageKeyTouchesOnlyTheKey)
{
    const std::string path = "/tmp/domino_test_spill_key.domimage";
    const ReplayImage image(testTrace(5, 1000));
    ASSERT_TRUE(spillReplayImage(path, image, "the-key").ok);
    std::string key;
    ASSERT_TRUE(readImageKey(path, key).ok);
    EXPECT_EQ(key, "the-key");
    std::remove(path.c_str());
}

TEST(ReplaySpill, MissingFileFailsCleanly)
{
    ReplayImage image;
    EXPECT_FALSE(
        loadReplayImage("/nonexistent/dir/x.domimage", image).ok);
    EXPECT_EQ(image.size(), 0u);
}

/** Spill a small image and return its path + bytes for corruption
 *  tests. */
std::vector<char>
spilledBytes(const std::string &path)
{
    const ReplayImage image(testTrace(9, 2000));
    EXPECT_TRUE(spillReplayImage(path, image, "corrupt-me").ok);
    return slurp(path);
}

TEST(ReplaySpill, CorruptMagicRejected)
{
    const std::string path = "/tmp/domino_test_spill_magic.domimage";
    std::vector<char> bytes = spilledBytes(path);
    bytes[0] ^= 0x20;
    spit(path, bytes);
    ReplayImage image;
    const IoResult res = loadReplayImage(path, image);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("magic"), std::string::npos);
    EXPECT_EQ(image.size(), 0u);
    std::remove(path.c_str());
}

TEST(ReplaySpill, UnknownVersionRejected)
{
    const std::string path = "/tmp/domino_test_spill_ver.domimage";
    std::vector<char> bytes = spilledBytes(path);
    bytes[8] = 99; // version u32 lives right after the magic
    spit(path, bytes);
    ReplayImage image;
    const IoResult res = loadReplayImage(path, image);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("version"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ReplaySpill, TruncationRejected)
{
    const std::string path = "/tmp/domino_test_spill_trunc.domimage";
    std::vector<char> bytes = spilledBytes(path);
    bytes.resize(bytes.size() - 7);
    spit(path, bytes);
    ReplayImage image;
    EXPECT_FALSE(loadReplayImage(path, image).ok);
    EXPECT_EQ(image.size(), 0u);
    std::remove(path.c_str());
}

TEST(ReplaySpill, HeaderOnlyTruncationRejected)
{
    const std::string path = "/tmp/domino_test_spill_hdr.domimage";
    std::vector<char> bytes = spilledBytes(path);
    bytes.resize(imageHeaderBytes);
    spit(path, bytes);
    ReplayImage image;
    EXPECT_FALSE(loadReplayImage(path, image).ok);
    std::remove(path.c_str());
}

TEST(ReplaySpill, FlippedPayloadByteFailsChecksum)
{
    const std::string path = "/tmp/domino_test_spill_sum.domimage";
    std::vector<char> bytes = spilledBytes(path);
    // Flip one byte in the last section's payload (the rw array
    // sits at the tail); the section checksum must catch it.
    bytes[bytes.size() - 1] ^= 0x01;
    spit(path, bytes);
    ReplayImage image;
    const IoResult res = loadReplayImage(path, image);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("checksum"), std::string::npos);
    EXPECT_EQ(image.size(), 0u);
    std::remove(path.c_str());
}

TEST(ReplaySpill, TrailingBytesRejected)
{
    const std::string path = "/tmp/domino_test_spill_tail.domimage";
    std::vector<char> bytes = spilledBytes(path);
    bytes.push_back('x');
    spit(path, bytes);
    ReplayImage image;
    EXPECT_FALSE(loadReplayImage(path, image).ok);
    std::remove(path.c_str());
}

TEST(ReplaySpill, AuditAgainstFlagsDivergence)
{
    const TraceBuffer trace = testTrace(11, 1500);
    const ReplayImage a(trace);
    ReplayImage b(trace);
    EXPECT_EQ(a.auditAgainst(b), "");
    ReplayImageTestPeer::lines(b)[7] ^= 1;
    EXPECT_NE(a.auditAgainst(b), "");
    ReplayImageTestPeer::lines(b)[7] ^= 1;
    ReplayImageTestPeer::rws(b)[3] ^= 1;
    EXPECT_NE(a.auditAgainst(b), "");
}

} // anonymous namespace

} // namespace domino
