"""Documentation cross-reference rules (the former check_docs.py).

The docs name files, CLI flags, and each other's sections; all three
decay silently as the code moves.  These rules re-derive every such
reference against the tree.  Selectable individually or as the
`docs` group (alias: `doc-drift`).

  file-ref      every `path/like.this` written in backticks in the
                tracked docs must exist in the repo (directory and
                glob refs resolve too).
  flag-ref      every `--flag` a doc mentions must appear in a C++
                source or script (the flag vocabulary is grep-able:
                args.get*("flag"), add_argument("--flag")).
  section-ref   every "DESIGN.md §N" / "see §N" style pointer into a
                numbered doc must name a section that exists there
                (sections are `## N. Title` headings).
  md-link       every relative markdown link target `[x](path)` must
                exist.
"""

from __future__ import annotations

import re
from pathlib import Path

from .engine import FIXTURE_DIR, Finding, SourceFile, Tree, rule

#: Docs whose references are checked (plus docs/*.md).
DOC_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CONTRIBUTING.md",
    "PAPER.md",
]

#: Backticked tokens that look like repo paths: at least one `/` and
#: a sane path alphabet.  `<...>` placeholders and URLs are skipped.
FILE_REF_RE = re.compile(r"`([A-Za-z0-9_.][A-Za-z0-9_./*-]*/"
                         r"[A-Za-z0-9_./*-]*)`")

#: `--flag` mentions in docs (value suffixes like `--n 120000` are
#: split off by the word boundary).
FLAG_REF_RE = re.compile(r"`--([a-z][a-z0-9-]*)")

#: Cross-doc section pointers: "DESIGN.md §7" or "(§7)" /
#: "see §7" (the latter resolve against the doc they appear in).
SECTION_REF_RE = re.compile(
    r"(?:(?P<doc>[A-Z_]+\.md)\s*)?§\s*(?P<num>\d+)")

#: Relative markdown link targets.
MD_LINK_RE = re.compile(r"\]\(([^)#`\s]+)(?:#[^)\s]*)?\)")

#: Numbered `## N. Title` headings.
SECTION_HEADING_RE = re.compile(r"^##\s+(\d+)\.", re.MULTILINE)

#: Where CLI flags are defined: C++ args lookups, python argparse,
#: and (last resort) any quoted "--flag" literal in a source.
FLAG_DEF_RES = [
    re.compile(r'args\.(?:get|getU64|getDouble|getBool|has)\s*\(\s*"'
               r'([a-z][a-z0-9-]*)"'),
    re.compile(r'add_argument\(\s*"--([a-z][a-z0-9-]*)"'),
    re.compile(r'"--([a-z][a-z0-9-]*)"'),
]

#: Flags documented but owned by external tools (cmake, ctest, git,
#: compilers, libFuzzer); not expected in repo sources.
EXTERNAL_FLAGS = {
    "build", "parallel", "output-on-failure", "target", "config",
    "branch", "version", "dry-run",
    "max_total_time", "runs", "timeout", "print_final_stats",
    "artifact_prefix",
}

#: First path segments that name generated trees: present after a
#: build / a run, never in a fresh checkout, so not checkable.
GENERATED_PREFIXES = ("build", ".domino-spill", ".fuzz-grown")


def doc_files(tree: Tree) -> list[SourceFile]:
    files = [tree.file(name) for name in DOC_FILES]
    docs_dir = tree.root / "docs"
    if docs_dir.is_dir():
        files.extend(tree.file(p.relative_to(tree.root).as_posix())
                     for p in sorted(docs_dir.glob("*.md")))
    return [f for f in files if f is not None]


def known_flags(tree: Tree) -> set[str]:
    if "known_flags" in tree.cache:
        return tree.cache["known_flags"]  # type: ignore[return-value]
    flags: set[str] = set()
    roots = ["src", "bench", "tests", "scripts", "examples", "fuzz"]
    for top in roots:
        base = tree.root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in {".cc", ".h", ".py", ".sh"}:
                continue
            if FIXTURE_DIR in path.relative_to(tree.root).parts:
                continue
            text = path.read_text(encoding="utf-8", errors="replace")
            for pattern in FLAG_DEF_RES:
                flags.update(pattern.findall(text))
    tree.cache["known_flags"] = flags
    return flags


def sections_by_doc(tree: Tree) -> dict[str, set[int]]:
    if "doc_sections" in tree.cache:
        return tree.cache["doc_sections"]  # type: ignore
    sections = {
        f.path.name: {int(n)
                      for n in SECTION_HEADING_RE.findall(f.text)}
        for f in doc_files(tree)
    }
    tree.cache["doc_sections"] = sections
    return sections


def _doc_lines(f: SourceFile):
    """(lineno, line, in_code_block) triples of a markdown doc."""
    in_code_block = False
    for lineno, line in enumerate(f.lines, start=1):
        if line.lstrip().startswith("```"):
            in_code_block = not in_code_block
            continue
        yield lineno, line, in_code_block


def _resolve_path_ref(tree: Tree, ref: str) -> bool:
    ref = ref.rstrip("/")
    if ref.split("/")[0].startswith(GENERATED_PREFIXES):
        return True
    if "*" in ref:
        return any(tree.root.glob(ref))
    return (tree.root / ref).exists()


@rule("file-ref", "docs",
      "every backticked path in the tracked docs must exist in the "
      "repo (directory and glob refs resolve too)")
def check_file_refs(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    for f in doc_files(tree):
        for lineno, line, _ in _doc_lines(f):
            for match in FILE_REF_RE.finditer(line):
                ref = match.group(1)
                if ref.startswith(("http", "<")) or \
                        ref.endswith("/..."):
                    continue
                if not _resolve_path_ref(tree, ref):
                    findings.append(Finding(
                        f.rel, lineno, "file-ref",
                        f"`{ref}` does not exist in the repo"))
    return findings


@rule("flag-ref", "docs",
      "every `--flag` a doc mentions must be parsed by a C++ source "
      "or script")
def check_flag_refs(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    flags = known_flags(tree)
    for f in doc_files(tree):
        for lineno, line, _ in _doc_lines(f):
            for match in FLAG_REF_RE.finditer(line):
                flag = match.group(1)
                if flag in EXTERNAL_FLAGS or flag in flags:
                    continue
                findings.append(Finding(
                    f.rel, lineno, "flag-ref",
                    f"`--{flag}` is not parsed by any source or "
                    "script"))
    return findings


@rule("section-ref", "docs",
      "every 'DESIGN.md §N' style pointer must name a section that "
      "exists in the target doc")
def check_section_refs(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    sections = sections_by_doc(tree)
    for f in doc_files(tree):
        for lineno, line, _ in _doc_lines(f):
            for match in SECTION_REF_RE.finditer(line):
                target = match.group("doc") or f.path.name
                num = int(match.group("num"))
                if target not in sections:
                    continue  # not a numbered doc we track
                if num not in sections[target]:
                    findings.append(Finding(
                        f.rel, lineno, "section-ref",
                        f"{target} has no section {num}"))
    return findings


@rule("md-link", "docs",
      "every relative markdown link target must exist")
def check_md_links(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    for f in doc_files(tree):
        for lineno, line, in_code_block in _doc_lines(f):
            if in_code_block:
                continue
            for match in MD_LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(("http", "mailto:")):
                    continue
                resolved = (Path(f.path).parent / target).resolve()
                if not resolved.exists():
                    findings.append(Finding(
                        f.rel, lineno, "md-link",
                        f"broken link target `{target}`"))
    return findings
