"""Repo-convention rules (the former check_conventions.py).

Each rule guards a convention clang-tidy cannot express; the what
and the why live in the rule descriptions and, at more length, in
docs/STATIC_ANALYSIS.md.  All rules are waivable per file with a
justified marker:

    // conventions: allow-file(<rule>) -- <reason>
"""

from __future__ import annotations

import re

from .engine import Finding, SourceFile, Tree, report, rule

# `new` / `delete` as allocation expressions.  Placement variants and
# `delete []` are matched deliberately: none should appear outside
# the waived files either.
RAW_NEW_RE = re.compile(
    r"\bnew\s+[A-Za-z_:<]|\bdelete\b\s*(\[\s*\]\s*)?[A-Za-z_(]")
DELETED_FN_RE = re.compile(r"=\s*delete\b")

# Note: `Prng name;` (default construction) is a *compile* error --
# Prng deliberately has no default seed -- so the lint only needs to
# catch explicit no-seed spellings and banned randomness sources.
UNSEEDED_RES = [
    (re.compile(r"\bPrng\s*\(\s*\)"), "Prng() without a seed"),
    (re.compile(r"\bPrng\s+\w+\s*\{\s*\}"), "Prng{} without a seed"),
    (re.compile(r"\bstd::mt19937"), "std::mt19937 is banned (bulky "
     "state, easy to misseed); use domino::Prng"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device is "
     "nondeterministic; experiments must replay from a seed"),
    (re.compile(r"(?<![\w:.])s?rand\s*\(\s*\)"), "C rand()/srand() is "
     "banned; use domino::Prng"),
]

# Additive arithmetic inside a Prng constructor expression.
# `Prng(seed + core)` gives nearby cores correlated streams and
# silently collides when the grid is re-shaped; positional seeds go
# through deriveCellSeed / deriveCoreSeed (or mix64), whose avalanche
# decorrelates the inputs.  XOR-with-salt (`seed ^ 0xe17`) is the
# accepted idiom for *distinguishing* streams and stays legal.
DERIVED_SEED_RE = re.compile(
    r"\bPrng\s*(?:\w+\s*)?[({][^)}]*[-+][^)}]*[)}]")
DERIVED_SEED_OK_RE = re.compile(
    r"\b(mix64|deriveCellSeed|deriveCoreSeed)\s*\(")

BARE_ASSERT_RES = [
    (re.compile(r"#\s*include\s*<cassert>"), "<cassert> include"),
    (re.compile(r"#\s*include\s*<assert\.h>"), "<assert.h> include"),
    (re.compile(r"(?<!static_)(?<!_)\bassert\s*\("), "assert() call"),
]

# Hot-path cache structures where set/row indexing must be a mask,
# never a modulo or divide (the geometries are power-of-two by
# construction; see SetAssocCache and EnhancedIndexTable).
HOT_SET_INDEX_FILES = {
    "src/mem/cache.h",
    "src/mem/cache.cc",
    "src/domino/eit.h",
    "src/domino/eit.cc",
    "src/mem/prefetch_buffer.h",
}
HOT_SET_INDEX_RES = [
    (re.compile(r"\bmix64\s*\([^)]*\)\s*[%/]"),
     "mix64(...) folded with %//"),
    (re.compile(r"[%/]\s*(sets|rows|nSets|rowCount)\b"),
     "set/row count used as a divisor"),
]

# Raw CPU-intrinsic headers.  All SIMD (and its SWAR fallback)
# lives behind src/common/simd.h so every kernel has a portable,
# result-identical path and DOMINO_NO_SIMD stays meaningful; code
# elsewhere includes simd.h, never the ISA headers.
RAW_SIMD_INCLUDE_RE = re.compile(
    r"#\s*include\s*[<\"]"
    r"(?:[a-z]+mmintrin|immintrin|x86intrin|arm_neon|arm_sve)"
    r"\.h[>\"]")
RAW_SIMD_ALLOWED = {"src/common/simd.h"}

#: (source file, required static_assert substring) pairs pinning the
#: on-disk contracts of docs/TRACE_FORMAT.md in code.  Every file
#: that reads or writes packed DOMTRACE/DOMIMAGE bytes is listed;
#: only files present in the tree are checked (fixture trees carry a
#: subset).
RECORD_LAYOUT_ASSERTS = [
    ("src/trace/trace_io.cc", "traceHeaderBytes == 20"),
    ("src/trace/trace_io.cc", "traceRecordBytes == 17"),
    ("src/trace/replay_spill.cc", "imageHeaderBytes == 24"),
    ("src/trace/replay_spill.cc", "imageSectionEntryBytes == 32"),
    ("src/trace/replay_spill.cc", "imageSectionCount == 4"),
    ("src/trace/replay_spill.cc", "imageSectionAlign == 64"),
    # streaming_source.cc rereads packed DOMTRACE records with its
    # own memcpy offsets, so it pins the record layout too.
    ("src/trace/streaming_source.cc", "traceHeaderBytes == 20"),
    ("src/trace/streaming_source.cc", "traceRecordBytes == 17"),
]


@rule("raw-new", "conventions",
      "no raw new/delete in C++ sources; containers and "
      "std::make_unique own everything")
def check_raw_new(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    for f in tree.cxx_files():
        for lineno, code in enumerate(f.stripped_lines, start=1):
            if RAW_NEW_RE.search(code) and \
                    not DELETED_FN_RE.search(code):
                report(findings, f, lineno, "raw-new",
                       "raw new/delete (use containers or "
                       "make_unique); offending line: "
                       + f.lines[lineno - 1].strip())
    return findings


@rule("unseeded-prng", "conventions",
      "no unseeded PRNGs and no banned randomness sources "
      "(std::mt19937, std::random_device, rand()); every experiment "
      "replays bit-for-bit from an explicit 64-bit seed")
def check_unseeded_prng(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    for f in tree.cxx_files():
        for lineno, code in enumerate(f.stripped_lines, start=1):
            for pattern, message in UNSEEDED_RES:
                if pattern.search(code):
                    report(findings, f, lineno, "unseeded-prng",
                           message)
    return findings


@rule("derived-seed", "conventions",
      "no additive seed arithmetic inside a Prng constructor; "
      "derive positional seeds with deriveCellSeed/deriveCoreSeed "
      "or mix64")
def check_derived_seed(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    for f in tree.cxx_files():
        for lineno, code in enumerate(f.stripped_lines, start=1):
            if DERIVED_SEED_RE.search(code) and \
                    not DERIVED_SEED_OK_RE.search(code):
                report(findings, f, lineno, "derived-seed",
                       "additive seed arithmetic inside a Prng "
                       "constructor (correlated/colliding streams); "
                       "derive the seed with deriveCellSeed/"
                       "deriveCoreSeed or mix64; offending line: "
                       + f.lines[lineno - 1].strip())
    return findings


@rule("bare-assert", "conventions",
      "no <cassert>/assert() in src/; invariants use CHECK/DCHECK "
      "(src/common/check.h) so they print values and participate in "
      "DOMINO_CHECKS builds")
def check_bare_assert(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    for f in tree.cxx_files():
        if not f.rel.startswith("src/"):
            continue
        for lineno, code in enumerate(f.stripped_lines, start=1):
            for pattern, message in BARE_ASSERT_RES:
                if pattern.search(code):
                    report(findings, f, lineno, "bare-assert",
                           message + " (use CHECK/DCHECK from "
                           "common/check.h)")
    return findings


@rule("hot-set-index", "conventions",
      "no % or / set/row-index arithmetic in the hot-path cache "
      "structures; power-of-two geometries index with a mask")
def check_hot_set_index(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    for f in tree.cxx_files():
        if f.rel not in HOT_SET_INDEX_FILES:
            continue
        for lineno, code in enumerate(f.stripped_lines, start=1):
            for pattern, message in HOT_SET_INDEX_RES:
                if pattern.search(code):
                    report(findings, f, lineno, "hot-set-index",
                           message + " on a hot-path cache "
                           "structure (index with a power-of-two "
                           "mask; see the set-index conventions); "
                           "offending line: "
                           + f.lines[lineno - 1].strip())
    return findings


@rule("raw-simd-include", "conventions",
      "no raw CPU-intrinsic includes (immintrin.h, arm_neon.h, ...) "
      "outside src/common/simd.h; vector kernels go through the "
      "dispatch header so the portable fallback stays equivalent")
def check_raw_simd_include(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    for f in tree.cxx_files():
        if f.rel in RAW_SIMD_ALLOWED:
            continue
        for lineno, code in enumerate(f.stripped_lines, start=1):
            if RAW_SIMD_INCLUDE_RE.search(code):
                report(findings, f, lineno, "raw-simd-include",
                       "raw CPU-intrinsic include (use "
                       "common/simd.h, which wraps every backend "
                       "behind result-identical kernels); "
                       "offending line: "
                       + f.lines[lineno - 1].strip())
    return findings


@rule("record-layout", "conventions",
      "files that read/write packed DOMTRACE/DOMIMAGE bytes must "
      "static_assert the on-disk sizes against docs/TRACE_FORMAT.md")
def check_record_layout(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    joined: dict[str, str] = {}
    files: dict[str, SourceFile] = {}
    for rel, required in RECORD_LAYOUT_ASSERTS:
        if rel not in joined:
            f = tree.file(rel)
            if f is None:
                continue  # fixture trees carry a subset
            files[rel] = f
            asserts = re.findall(r"static_assert\s*\(([^;]*?)\)\s*;",
                                 f.text, re.DOTALL)
            joined[rel] = " ".join(asserts)
        if rel in joined and required not in joined[rel]:
            report(findings, files[rel], 0, "record-layout",
                   f"missing static_assert({required}) tying the "
                   "layout to docs/TRACE_FORMAT.md")
    return findings
