"""Directory/module entry point: `python3 scripts/domlint ...`."""

import sys
from pathlib import Path

if __package__ in (None, ""):
    # Executed as a directory program: put scripts/ on the path so
    # the package imports resolve.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from domlint.cli import main
else:
    from .cli import main

sys.exit(main())
