"""Cross-file semantic rules guarding the determinism contract.

These go beyond the line-local conventions: they reason about
declarations, class bodies, and the include graph.

  ordered-output   iteration over an unordered container is banned
                   in the output-feeding layers (src/, bench/,
                   examples/): iteration order is unspecified, and
                   one stray range-for over an unordered_map turns a
                   byte-identical CSV/JSON/trace contract into a
                   hash-seed lottery.  Sort into a vector first, or
                   waive with a justification (markov.cc does: its
                   bounded-table victim is deliberately
                   iteration-order dependent and committed output).
  audit-coverage   every stateful class in src/ headers (a `class`
                   with a container data member) must declare a
                   structural audit() / checkInvariants(), or carry
                   a justified waiver.  The audits are the runtime
                   half of the correctness layer (sampled mid-run in
                   DOMINO_CHECKS builds); a stateful class without
                   one is invisible to it.
  layering         the module DAG of DESIGN.md section 5 (mirrored
                   by the CMake link graph) enforced over #include
                   lines: common at the bottom; mem, sequitur,
                   prefetch, trace, runner above it; domino over
                   prefetch; sim over mem+trace+prefetch; multicore
                   over sim; analysis on top.  bench/tests/examples/
                   fuzz may include anything.
"""

from __future__ import annotations

import re

from . import cxx
from .engine import Finding, SourceFile, Tree, report, rule

# --------------------------------------------------------------- #
# ordered-output

UNORDERED_TYPE_RE = re.compile(r"\bstd::unordered_(?:map|set)\s*<")
UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*std::unordered_(?:map|set)\s*<")

#: Layers whose files feed committed output (figure CSV/JSON rows,
#: trace bytes, report tables).  tests/ are exempt: they assert, not
#: emit.
ORDERED_OUTPUT_DIRS = ("src/", "bench/", "examples/")


def _unordered_names(stripped_text: str) -> set[str]:
    """Names of variables/members declared with an unordered
    container type (or an alias of one) in @p stripped_text."""
    aliases = set(UNORDERED_ALIAS_RE.findall(stripped_text))
    names: set[str] = set()

    starts = [m.start() for m in
              UNORDERED_TYPE_RE.finditer(stripped_text)]
    for alias in aliases:
        starts.extend(
            m.start() for m in
            re.finditer(r"\b" + alias + r"\b", stripped_text))
    for start in starts:
        lt = stripped_text.find("<", start)
        semi = stripped_text.find(";", start)
        if lt >= 0 and (semi < 0 or lt < semi):
            end = cxx.balanced_angle_end(stripped_text, lt)
            if end < 0:
                continue
        else:
            # Alias used without template args (fully bound alias).
            end = start + len(
                re.match(r"\w+|\S*", stripped_text[start:]).group())
        m = re.match(r"[\s&]*(\w+)\s*([;,)={[])",
                     stripped_text[end:end + 160])
        if m and m.group(1) not in aliases:
            names.add(m.group(1))
    return names


def _paired_header(tree: Tree, f: SourceFile) -> SourceFile | None:
    """The x.h next to an x.cc/x.cpp (member declarations live
    there; iteration usually in the .cc)."""
    if f.path.suffix not in (".cc", ".cpp"):
        return None
    return tree.file(
        f.path.with_suffix(".h").relative_to(tree.root).as_posix())


@rule("ordered-output", "semantic",
      "no iteration over unordered containers in the output-feeding "
      "layers (src/, bench/, examples/); unspecified iteration "
      "order breaks the byte-identical output contract")
def check_ordered_output(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    for f in tree.cxx_files():
        if not f.rel.startswith(ORDERED_OUTPUT_DIRS):
            continue
        names = _unordered_names(f.stripped_text)
        header = _paired_header(tree, f)
        if header is not None:
            names |= _unordered_names(header.stripped_text)
        if not names:
            continue
        alt = "|".join(sorted(re.escape(n) for n in names))
        range_for = re.compile(
            r"for\s*\([^;]*:\s*(?:this->)?(" + alt + r")\s*\)")
        begin_call = re.compile(
            r"(?<![\w.>])(" + alt + r")\s*\.\s*c?r?begin\s*\(")
        for lineno, code in enumerate(f.stripped_lines, start=1):
            m = range_for.search(code) or begin_call.search(code)
            if m:
                report(findings, f, lineno, "ordered-output",
                       f"iteration over unordered container "
                       f"'{m.group(1)}' on an output-feeding path "
                       "(iteration order is unspecified; sort into "
                       "a vector first, or waive with a "
                       "justification); offending line: "
                       + f.lines[lineno - 1].strip())
    return findings


# --------------------------------------------------------------- #
# audit-coverage

CLASS_DEF_RE = re.compile(
    r"\bclass\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^;{]*)?\{")

#: A data member whose type owns bulk mutable state.  Matches the
#: member name after the closing `>` so member *functions* returning
#: containers (name followed by `(`) do not count.
CONTAINER_MEMBER_RE = re.compile(
    r"\b(?:std::(?:vector|deque|map|set|unordered_map|unordered_set"
    r"|list)|FlatHashMap|LruSet)\s*<[^;{}()]*>\s*"
    r"(\w+)\s*(?:\{[^;{}]*\})?\s*(?:=[^;]*)?;")

AUDIT_DECL_RE = re.compile(r"\b(?:audit|checkInvariants)\s*\(")


@rule("audit-coverage", "semantic",
      "every stateful class in src/ headers (a class with a "
      "container data member) must declare audit() or "
      "checkInvariants(), or carry a justified waiver")
def check_audit_coverage(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    for f in tree.cxx_files():
        if not (f.rel.startswith("src/") and
                f.path.suffix in (".h", ".hpp")):
            continue
        text = f.stripped_text
        for m in CLASS_DEF_RE.finditer(text):
            name = m.group(1)
            open_brace = text.index("{", m.start())
            end = cxx.body_extent(text, open_brace)
            if end < 0:
                continue
            body = text[open_brace:end]
            member = None
            for mm in CONTAINER_MEMBER_RE.finditer(body):
                decl_line_start = body.rfind("\n", 0, mm.start())
                decl = body[decl_line_start + 1:mm.end()]
                if "static" not in decl:
                    member = mm.group(1)
                    break
            if member is None or AUDIT_DECL_RE.search(body):
                continue
            report(findings, f,
                   cxx.line_of_offset(text, m.start()),
                   "audit-coverage",
                   f"stateful class '{name}' (container member "
                   f"'{member}') declares no audit()/"
                   "checkInvariants(); add a structural audit or "
                   "waive with a justification")
    return findings


# --------------------------------------------------------------- #
# raw-mmap

#: Raw memory-mapping primitives, bare or ::-qualified.  The
#: class-char lookbehind keeps identifiers that merely *contain* a
#: banned name (mmapHits, setMmapTier) and member calls (.mmap,
#: ->mmap) from matching; the stripped view already removed comments
#: and strings.
RAW_MMAP_RE = re.compile(
    r"(?<![\w.>])(?:mmap|mmap64|mremap|munmap|madvise|"
    r"posix_madvise)\s*\(")
MMAN_INCLUDE_RE = re.compile(r"#\s*include\s*<sys/mman\.h>")

#: The one owner of the raw primitives: everything else maps files
#: through trace/mapped_file.h (RAII lifetime, audited geometry,
#: one place to harden error paths).
RAW_MMAP_ALLOWED = {"src/trace/mapped_file.cc"}


@rule("raw-mmap", "semantic",
      "no raw mmap/munmap/madvise calls (or <sys/mman.h> includes) "
      "outside src/trace/mapped_file.cc; map files through "
      "trace/mapped_file.h so lifetimes stay RAII-owned and mapped "
      "geometry stays audited")
def check_raw_mmap(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    for f in tree.cxx_files():
        if f.rel in RAW_MMAP_ALLOWED:
            continue
        for lineno, code in enumerate(f.stripped_lines, start=1):
            if RAW_MMAP_RE.search(code) or \
                    MMAN_INCLUDE_RE.search(code):
                report(findings, f, lineno, "raw-mmap",
                       "raw memory-mapping primitive (use "
                       "trace/mapped_file.h, the RAII wrapper that "
                       "owns every mapping); offending line: "
                       + f.lines[lineno - 1].strip())
    return findings


# --------------------------------------------------------------- #
# layering

#: module -> modules it may #include, beyond itself.  This is the
#: DAG of DESIGN.md section 5, kept in lockstep with the
#: target_link_libraries graph in src/*/CMakeLists.txt (the public
#: link closure).  A new src/ module must be added here AND to
#: DESIGN.md's module map.
LAYERING_DAG: dict[str, set[str]] = {
    "common": set(),
    "trace": {"common"},
    "mem": {"common"},
    "prefetch": {"common"},
    "sequitur": {"common"},
    "runner": {"common"},
    "workloads": {"common", "trace"},
    "domino": {"common", "prefetch"},
    "sim": {"common", "trace", "mem", "prefetch"},
    "multicore": {"common", "trace", "mem", "prefetch", "sim"},
    "adaptive": {"common", "prefetch", "multicore"},
    "analysis": {"common", "trace", "mem", "prefetch", "domino",
                 "sequitur", "sim", "multicore", "adaptive"},
}

INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


@rule("layering", "semantic",
      "src/ modules may only #include modules below them in the "
      "DESIGN.md module DAG (common at the bottom, analysis on top)")
def check_layering(tree: Tree) -> list[Finding]:
    findings: list[Finding] = []
    for f in tree.cxx_files():
        parts = f.rel.split("/")
        if len(parts) < 3 or parts[0] != "src":
            continue
        module = parts[1]
        if module not in LAYERING_DAG:
            report(findings, f, 0, "layering",
                   f"src module '{module}' is not in the layering "
                   "DAG; add it to DESIGN.md's module map and to "
                   "LAYERING_DAG in scripts/domlint/"
                   "rules_semantic.py")
            continue
        allowed = LAYERING_DAG[module]
        # The include *target* is a string literal, which the
        # stripped view blanks out; match on the raw line, but gate
        # on the stripped one so commented-out includes stay dead.
        for lineno, (raw, code) in enumerate(
                zip(f.lines, f.stripped_lines), start=1):
            if "include" not in code:
                continue
            m = INCLUDE_RE.search(raw)
            if not m or "/" not in m.group(1):
                continue
            target = m.group(1).split("/")[0]
            if target not in LAYERING_DAG or target == module:
                continue
            if target not in allowed:
                report(findings, f, lineno, "layering",
                       f"module '{module}' may not include "
                       f"'{target}' (allowed: "
                       + (", ".join(sorted(allowed)) or "none")
                       + "; the DAG lives in DESIGN.md section 5)")
    return findings
