"""The domlint command line.

    python3 scripts/domlint [--root DIR] [--rules SPEC]
                            [--list-rules] [--list-waivers]

Exit status: 0 clean, 1 findings, 2 usage error (the same contract
the old check_conventions.py / check_docs.py had, so CI wiring and
shims keep working).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import engine

#: scripts/domlint/cli.py -> repo root.
DEFAULT_ROOT = Path(__file__).resolve().parent.parent.parent


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="domlint",
        description="Unified static-analysis engine of the Domino "
                    "repo (rule catalogue: docs/STATIC_ANALYSIS.md)")
    p.add_argument(
        "--root", type=Path, default=DEFAULT_ROOT,
        help="tree to analyse (default: the repo root; fixture "
             "trees under tests/lint_fixtures use this)")
    p.add_argument(
        "--rules", default="all", metavar="SPEC",
        help="comma-separated rule or group names (groups: "
             "conventions, semantic, docs [alias doc-drift], all)")
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    p.add_argument(
        "--list-waivers", action="store_true",
        help="print every allow-file waiver in the tree and exit")
    return p


def main(argv: list[str] | None = None) -> int:
    engine.load_all_rules()
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as e:
        # argparse exits 2 on usage errors already; normalise 0 for
        # --help into a plain return so shims can wrap us.
        return int(e.code or 0)

    if args.list_rules:
        for r in engine.RULES.values():
            print(f"{r.name:16s} [{r.group}] {r.description}")
        return 0

    if not args.root.is_dir():
        print(f"domlint: no such tree root: {args.root}",
              file=sys.stderr)
        return 2

    tree = engine.Tree(args.root)

    if args.list_waivers:
        waivers = tree.all_waivers()
        for w in waivers:
            print(f"{w.path}:{w.line}: [{w.rule}] {w.reason}")
        print(f"domlint: {len(waivers)} waiver(s)", file=sys.stderr)
        return 0

    try:
        rules = engine.select_rules(args.rules)
    except ValueError as e:
        print(f"domlint: {e}", file=sys.stderr)
        return 2

    findings = engine.run(tree, rules)
    for finding in findings:
        print(finding)
    if findings:
        print(f"domlint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"domlint: OK ({len(rules)} rules, "
          f"{len(tree.cxx_files())} C++ files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
