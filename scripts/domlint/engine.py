"""Rule registry, finding/waiver model, and the Tree file corpus.

A rule is a named check over a Tree (a rooted file corpus).  Rules
register themselves with the @rule decorator and are selected by
name or by group on the CLI (`--rules ordered-output,docs`).  The
engine owns the cross-cutting mechanics every rule shares:

  - file discovery and text caching (each file is read once),
  - comment/string stripping for C++ sources (cxx.py),
  - waivers: `// conventions: allow-file(<rule>) -- <reason>`
    suppresses one rule for one file, and must carry a reason.
    A waiver naming an unknown rule is itself a finding (a typo'd
    waiver must not silently disable nothing).

Exit-status contract (cli.py): 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path
from typing import Callable, Iterable

from . import cxx

#: Directories scanned for C++ sources, relative to the tree root.
CXX_DIRS = ("src", "bench", "tests", "examples", "fuzz")
CXX_SUFFIXES = {".cc", ".cpp", ".h", ".hpp"}

#: Path fragment naming the lint fixture trees: known-bad snippets
#: live there on purpose, so real-tree scans must skip them (the
#: self-test scans them with explicit --root instead).
FIXTURE_DIR = "lint_fixtures"

WAIVER_RE = re.compile(
    r"conventions:\s*allow-file\((?P<rule>[a-z-]+)\)\s*--\s*"
    r"(?P<reason>\S.*)")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one location (line 0 = whole file)."""
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"


@dataclasses.dataclass(frozen=True)
class Waiver:
    """One allow-file marker: where, which rule, and why."""
    path: str
    line: int
    rule: str
    reason: str


class SourceFile:
    """One file of the corpus, with lazily computed views."""

    def __init__(self, root: Path, path: Path):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self._text: str | None = None
        self._stripped: list[str] | None = None
        self._waivers: list[Waiver] | None = None

    @property
    def text(self) -> str:
        if self._text is None:
            self._text = self.path.read_text(encoding="utf-8",
                                             errors="replace")
        return self._text

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()

    @property
    def stripped_lines(self) -> list[str]:
        """Comment/string-stripped lines (C++ lexical rules)."""
        if self._stripped is None:
            self._stripped = cxx.strip_text(self.text)
        return self._stripped

    @property
    def stripped_text(self) -> str:
        return "\n".join(self.stripped_lines)

    @property
    def waivers(self) -> list[Waiver]:
        if self._waivers is None:
            self._waivers = [
                Waiver(self.rel, lineno, m.group("rule"),
                       m.group("reason").strip())
                for lineno, raw in enumerate(self.lines, start=1)
                for m in [WAIVER_RE.search(raw)] if m
            ]
        return self._waivers

    def waived(self, rule_name: str) -> bool:
        return any(w.rule == rule_name for w in self.waivers)


class Tree:
    """A rooted file corpus (the repo, or a fixture tree)."""

    def __init__(self, root: Path):
        self.root = root.resolve()
        #: Scratch space for cross-rule memoisation (e.g. the
        #: harvested CLI-flag vocabulary of the docs rules).
        self.cache: dict[str, object] = {}
        self._files: dict[str, SourceFile] = {}

    def _get(self, path: Path) -> SourceFile:
        rel = path.relative_to(self.root).as_posix()
        if rel not in self._files:
            self._files[rel] = SourceFile(self.root, path)
        return self._files[rel]

    def _walk(self, tops: Iterable[str],
              suffixes: set[str]) -> list[SourceFile]:
        out: list[SourceFile] = []
        for top in tops:
            base = self.root / top
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix not in suffixes:
                    continue
                # Root-relative, so a fixture tree can itself be
                # scanned with --root tests/lint_fixtures/<rule>/bad.
                if FIXTURE_DIR in path.relative_to(self.root).parts:
                    continue
                out.append(self._get(path))
        return out

    def cxx_files(self) -> list[SourceFile]:
        return self._walk(CXX_DIRS, CXX_SUFFIXES)

    def file(self, rel: str) -> SourceFile | None:
        """The file at tree-relative @p rel, or None."""
        path = self.root / rel
        return self._get(path) if path.is_file() else None

    def all_waivers(self) -> list[Waiver]:
        waivers: list[Waiver] = []
        for f in self.cxx_files():
            waivers.extend(f.waivers)
        return waivers


@dataclasses.dataclass(frozen=True)
class Rule:
    name: str
    group: str
    description: str
    check: Callable[[Tree], list[Finding]]


#: name -> Rule, in registration order (dicts preserve it).
RULES: dict[str, Rule] = {}

#: Selectable group aliases; `doc-drift` is the ISSUE-facing name of
#: the ported docs cross-reference family.
GROUP_ALIASES = {"doc-drift": "docs"}


def rule(name: str, group: str,
         description: str) -> Callable[[Callable], Callable]:
    """Register a rule function: check(tree) -> list[Finding]."""
    def wrap(fn: Callable[[Tree], list[Finding]]) -> Callable:
        if name in RULES:
            raise ValueError(f"duplicate rule name: {name}")
        RULES[name] = Rule(name, group, description, fn)
        return fn
    return wrap


def select_rules(spec: str | None) -> list[Rule]:
    """Resolve a --rules spec (names and group names, commas).

    None or "all" selects everything.  Raises ValueError on an
    unknown token.
    """
    if not spec or spec == "all":
        return list(RULES.values())
    chosen: dict[str, Rule] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        group = GROUP_ALIASES.get(token, token)
        members = [r for r in RULES.values() if r.group == group]
        if token in RULES:
            chosen[token] = RULES[token]
        elif members:
            chosen.update({r.name: r for r in members})
        else:
            raise ValueError(f"unknown rule or group: {token!r}")
    return list(chosen.values())


def run(tree: Tree, rules: Iterable[Rule]) -> list[Finding]:
    """Run @p rules over @p tree; waivers already applied by rules
    via `report`, plus the engine-level unknown-waiver check."""
    findings: list[Finding] = []
    for r in rules:
        findings.extend(r.check(tree))
    findings.extend(_check_waiver_targets(tree))
    return findings


def _check_waiver_targets(tree: Tree) -> list[Finding]:
    """A waiver must name a registered rule (typos disable nothing,
    so they must be loud)."""
    return [
        Finding(w.path, w.line, "unknown-waiver",
                f"waiver names unknown rule '{w.rule}' (known: "
                + ", ".join(sorted(RULES)) + ")")
        for w in tree.all_waivers() if w.rule not in RULES
    ]


def report(findings: list[Finding], f: SourceFile, line: int,
           rule_name: str, message: str) -> None:
    """Append a finding unless @p f waives @p rule_name."""
    if not f.waived(rule_name):
        findings.append(Finding(f.rel, line, rule_name, message))


def load_all_rules() -> None:
    """Import every rule module (registration side effect)."""
    from . import rules_conventions  # noqa: F401
    from . import rules_semantic  # noqa: F401
    from . import rules_docs  # noqa: F401
