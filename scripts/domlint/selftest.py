"""Fixture-based self-test of the domlint rule engine.

Every rule ships a pair of committed fixture trees under
tests/lint_fixtures/<rule>/:

    bad/    a minimal tree the rule MUST flag (at least one finding
            of exactly that rule),
    good/   a near-identical tree the rule MUST pass (zero findings
            of any kind for that rule selection).

The special `waiver/` pair exercises the engine's waiver machinery
instead of a rule: its bad tree carries a waiver naming an unknown
rule (which must surface as an `unknown-waiver` finding), its good
tree carries a justified raw-new waiver that must suppress the
finding.

Run directly (`python3 scripts/domlint/selftest.py`) or through
CTest (the `lint_domlint` test).  Exit status: 0 on success, 1 on
any expectation failure.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from domlint import engine
else:
    from . import engine

#: scripts/domlint/selftest.py -> repo root.
REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"

#: fixture dir -> (rules spec to run, rule expected in bad/).
#: The waiver pair runs the raw-new rule: its bad tree must produce
#: the engine-level unknown-waiver finding, its good tree must be
#: silenced by a justified waiver.
SPECIAL = {"waiver": ("raw-new", "unknown-waiver")}


def run_tree(root: Path, spec: str) -> list[engine.Finding]:
    tree = engine.Tree(root)
    return engine.run(tree, engine.select_rules(spec))


def main() -> int:
    engine.load_all_rules()
    failures: list[str] = []
    pairs = sorted(p for p in FIXTURES.iterdir() if p.is_dir())
    if not pairs:
        print("selftest: no fixture trees found under "
              f"{FIXTURES}", file=sys.stderr)
        return 1

    covered = set()
    for fixture in pairs:
        name = fixture.name
        spec, expected = SPECIAL.get(name, (name, name))
        covered.add(expected)

        bad = run_tree(fixture / "bad", spec)
        hits = [f for f in bad if f.rule == expected]
        if not hits:
            failures.append(
                f"{name}/bad: expected at least one [{expected}] "
                f"finding, got {[str(f) for f in bad]}")
        strays = [f for f in bad if f.rule != expected]
        if strays:
            failures.append(
                f"{name}/bad: stray findings of other rules: "
                f"{[str(f) for f in strays]}")

        good = run_tree(fixture / "good", spec)
        if good:
            failures.append(
                f"{name}/good: expected a clean pass, got "
                f"{[str(f) for f in good]}")

        status = "FAIL" if any(x.startswith(name + "/")
                               for x in failures) else "ok"
        print(f"selftest: {name:16s} {status} "
              f"(bad: {len(hits)} finding(s))")

    # Every registered rule must have a fixture pair: a rule nobody
    # can demonstrate is a rule nobody can trust.
    missing = set(engine.RULES) - covered
    if missing:
        failures.append(
            "rules without fixture pairs under tests/lint_fixtures: "
            + ", ".join(sorted(missing)))

    if failures:
        print("\nselftest: FAILED", file=sys.stderr)
        for f in failures:
            print("  - " + f, file=sys.stderr)
        return 1
    print(f"selftest: OK ({len(pairs)} fixture pairs, "
          f"{len(engine.RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
