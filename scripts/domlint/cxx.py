"""C++ source text model for domlint rules.

Rules never see raw file text directly: they work on comment- and
string-stripped lines so that `return "new rule";` or a commented
example cannot trip a lint.  The stripping is deliberately lexical
(no preprocessor, no parsing) -- the same best-effort contract the
old check_conventions.py had -- but it is computed once per file and
shared by every rule.
"""

from __future__ import annotations

import re


def strip_line(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Strip one physical line.

    Returns the stripped line and the block-comment state carried
    into the next line.  String and char literals are replaced by
    empty literals, `//` comments are dropped, `/* ... */` runs are
    blanked (multi-line runs via the carried state).
    """
    if in_block_comment:
        end = line.find("*/")
        if end < 0:
            return "", True
        line = line[end + 2:]
    # Drop complete /* ... */ runs, then note a trailing opener.
    line = re.sub(r"/\*.*?\*/", " ", line)
    start = line.find("/*")
    trailing_open = start >= 0
    if trailing_open:
        line = line[:start]

    out: list[str] = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            i += 1
            out.append('""' if quote == '"' else "''")
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out), trailing_open


def strip_text(text: str) -> list[str]:
    """Stripped lines of a whole file (1-based indexing offsets)."""
    stripped: list[str] = []
    in_block = False
    for raw in text.splitlines():
        line, in_block = strip_line(raw, in_block)
        stripped.append(line)
    return stripped


def balanced_angle_end(text: str, start: int) -> int:
    """Index one past the `>` matching the `<` at @p start.

    Used to skip template argument lists when scanning declarations.
    Returns -1 when the brackets never balance (truncated text).
    """
    depth = 0
    i = start
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            # A declaration never carries these inside its template
            # argument list; bail out instead of scanning the file.
            return -1
        i += 1
    return -1


def body_extent(text: str, open_brace: int) -> int:
    """Index one past the `}` matching the `{` at @p open_brace.

    Operates on stripped text (no string/comment hazards).
    Returns -1 when braces never balance.
    """
    depth = 0
    for i in range(open_brace, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def line_of_offset(text: str, offset: int) -> int:
    """1-based line number of a character offset into @p text."""
    return text.count("\n", 0, offset) + 1
