"""domlint -- the unified static-analysis engine of the Domino repo.

One rule registry behind one CLI subsumes what used to be three
disconnected scripts (check_conventions.py, check_docs.py, and the
ad-hoc glue around .clang-tidy): repo-convention rules, documentation
cross-reference rules, and cross-file semantic rules that guard the
byte-identical determinism contract (ordered-output, audit-coverage,
layering, record-layout).

Run it as a directory program:

    python3 scripts/domlint                  # all rules, repo root
    python3 scripts/domlint --rules docs     # one rule group
    python3 scripts/domlint --list-rules     # the catalogue
    python3 scripts/domlint --list-waivers   # every waiver + reason

Uses nothing but the standard library (the container ships no Python
packages).  Policy and the rule catalogue: docs/STATIC_ANALYSIS.md.
Self-tests: scripts/domlint/selftest.py over tests/lint_fixtures/
(registered with CTest as `lint_domlint`).
"""

__version__ = "1.0"
