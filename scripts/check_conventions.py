#!/usr/bin/env python3
"""Thin compatibility shim over the domlint engine.

The convention checks that used to live here are now rules of the
unified engine in scripts/domlint/ (rules_conventions.py), selected
as the `conventions` group.  This entry point keeps old CI wiring
and muscle memory working; new callers should invoke

    python3 scripts/domlint --rules conventions

directly.  Exit status is unchanged: 0 clean, 1 findings.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from domlint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["--rules", "conventions"] + sys.argv[1:]))
