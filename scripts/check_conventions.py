#!/usr/bin/env python3
"""Repo-convention lint for the Domino reproduction.

Checks conventions that clang-tidy cannot express, using nothing but
the standard library (the container ships no Python packages):

  raw-new        no raw `new` / `delete` in C++ sources -- containers
                 and std::make_unique own everything.  Waivable per
                 file with a justification comment:
                     // conventions: allow-file(raw-new) -- <reason>
  unseeded-prng  no default-constructed or literal-free PRNGs and no
                 banned randomness sources (std::mt19937, rand(),
                 std::random_device): every experiment must replay
                 bit-for-bit from an explicit 64-bit seed.
  derived-seed   no arithmetic (`seed + core`, `seed * 977`, ...)
                 inside a Prng constructor: nearby seeds give PRNGs
                 with correlated streams and silently collide when
                 grids are re-shaped.  Derive positional seeds with
                 deriveCellSeed / deriveCoreSeed (or mix64) instead.
  bare-assert    no <cassert>/assert() in src/ -- invariants use the
                 CHECK/DCHECK family (src/common/check.h) so they
                 print values and participate in DOMINO_CHECKS
                 builds (static_assert is fine and encouraged).
  record-layout  src/trace/trace_io.cc and src/trace/replay_spill.cc
                 must static_assert the on-disk header/record/section
                 sizes against the contract in docs/TRACE_FORMAT.md.
  hot-set-index  no `%` / `/` set- or row-index arithmetic in the
                 hot-path cache structures (src/mem/cache.*,
                 src/domino/eit.*, src/mem/prefetch_buffer.h):
                 geometries there are power-of-two by construction,
                 so indexing is a mask (and way striding a shift) --
                 an integer divide on the per-access path costs
                 20-40 cycles and re-crept in twice before this
                 rule.  Waivable per file like raw-new.

Exit status: 0 clean, 1 findings, 2 usage error.
See docs/STATIC_ANALYSIS.md for policy; run via scripts/lint.sh.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CXX_DIRS = ("src", "bench", "tests", "examples")
CXX_SUFFIXES = {".cc", ".cpp", ".h", ".hpp"}

WAIVER_RE = re.compile(
    r"conventions:\s*allow-file\((?P<rule>[a-z-]+)\)\s*--\s*\S")

# `new` / `delete` as allocation expressions.  Placement variants and
# `= delete` / `delete []` member functions are matched deliberately:
# none should appear outside the waived files either.
RAW_NEW_RE = re.compile(
    r"\bnew\s+[A-Za-z_:<]|\bdelete\b\s*(\[\s*\]\s*)?[A-Za-z_(]")
DELETED_FN_RE = re.compile(r"=\s*delete\b")

# Note: `Prng name;` (default construction) is a *compile* error --
# Prng deliberately has no default seed -- so the lint only needs to
# catch explicit no-seed spellings and banned randomness sources.
UNSEEDED_RES = [
    (re.compile(r"\bPrng\s*\(\s*\)"), "Prng() without a seed"),
    (re.compile(r"\bPrng\s+\w+\s*\{\s*\}"), "Prng{} without a seed"),
    (re.compile(r"\bstd::mt19937"), "std::mt19937 is banned (bulky "
     "state, easy to misseed); use domino::Prng"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device is "
     "nondeterministic; experiments must replay from a seed"),
    (re.compile(r"(?<![\w:.])s?rand\s*\(\s*\)"), "C rand()/srand() is "
     "banned; use domino::Prng"),
]

# Additive arithmetic inside a Prng constructor expression.
# `Prng(seed + core)` gives nearby cores correlated streams and
# silently collides when the grid is re-shaped; positional seeds go
# through deriveCellSeed / deriveCoreSeed (or mix64), whose avalanche
# decorrelates the inputs.  XOR-with-salt (`seed ^ 0xe17`) is the
# accepted idiom for *distinguishing* streams and stays legal.  Both
# spellings are covered: `Prng(expr)` and `Prng name(expr)` /
# `Prng name{expr}`.
DERIVED_SEED_RE = re.compile(
    r"\bPrng\s*(?:\w+\s*)?[({][^)}]*[-+][^)}]*[)}]")
DERIVED_SEED_OK_RE = re.compile(
    r"\b(mix64|deriveCellSeed|deriveCoreSeed)\s*\(")

# Hot-path cache structures where set/row indexing must be a mask,
# never a modulo or divide (the geometries are power-of-two by
# construction; see SetAssocCache and EnhancedIndexTable).
HOT_SET_INDEX_FILES = {
    "src/mem/cache.h",
    "src/mem/cache.cc",
    "src/domino/eit.h",
    "src/domino/eit.cc",
    "src/mem/prefetch_buffer.h",
}
HOT_SET_INDEX_RES = [
    (re.compile(r"\bmix64\s*\([^)]*\)\s*[%/]"),
     "mix64(...) folded with %//"),
    (re.compile(r"[%/]\s*(sets|rows|nSets|rowCount)\b"),
     "set/row count used as a divisor"),
]

BARE_ASSERT_RES = [
    (re.compile(r"#\s*include\s*<cassert>"), "<cassert> include"),
    (re.compile(r"#\s*include\s*<assert\.h>"), "<assert.h> include"),
    (re.compile(r"(?<!static_)(?<!_)\bassert\s*\("), "assert() call"),
]


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of string/char literals and // comments.

    Keeps the check honest on lines like `return "new rule";`.
    Block comments spanning lines are handled by the caller.
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            i += 1
            out.append('""' if quote == '"' else "''")
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def cxx_files() -> list[Path]:
    files = []
    for top in CXX_DIRS:
        root = REPO / top
        if not root.is_dir():
            continue
        files.extend(
            p for p in sorted(root.rglob("*")) if p.suffix in CXX_SUFFIXES)
    return files


def check_file(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    waivers = {m.group("rule") for m in WAIVER_RE.finditer(text)}
    rel = path.relative_to(REPO)
    findings = []

    in_block_comment = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        # Drop complete /* ... */ runs, then note a trailing opener.
        line = re.sub(r"/\*.*?\*/", " ", line)
        start = line.find("/*")
        if start >= 0:
            line = line[:start]
            in_block_comment = True
        code = strip_comments_and_strings(line)

        def report(rule: str, message: str) -> None:
            if rule not in waivers:
                findings.append(f"{rel}:{lineno}: [{rule}] {message}")

        if RAW_NEW_RE.search(code) and not DELETED_FN_RE.search(code):
            report("raw-new",
                   "raw new/delete (use containers or make_unique); "
                   f"offending line: {raw.strip()}")
        for pattern, message in UNSEEDED_RES:
            if pattern.search(code):
                report("unseeded-prng", message)
        if (DERIVED_SEED_RE.search(code)
                and not DERIVED_SEED_OK_RE.search(code)):
            report("derived-seed",
                   "additive seed arithmetic inside a Prng "
                   "constructor (correlated/colliding streams); "
                   "derive the seed with deriveCellSeed/"
                   "deriveCoreSeed or mix64; "
                   f"offending line: {raw.strip()}")
        if str(rel) in HOT_SET_INDEX_FILES:
            for pattern, message in HOT_SET_INDEX_RES:
                if pattern.search(code):
                    report("hot-set-index",
                           message + " on a hot-path cache "
                           "structure (index with a power-of-two "
                           "mask; see the set-index conventions); "
                           f"offending line: {raw.strip()}")
        if str(rel).startswith("src/"):
            for pattern, message in BARE_ASSERT_RES:
                if pattern.search(code):
                    report("bare-assert",
                           message + " (use CHECK/DCHECK from "
                           "common/check.h)")
    return findings


#: (source file, required static_assert substring) pairs pinning the
#: on-disk contracts of docs/TRACE_FORMAT.md in code.
RECORD_LAYOUT_ASSERTS = [
    ("src/trace/trace_io.cc", "traceHeaderBytes == 20"),
    ("src/trace/trace_io.cc", "traceRecordBytes == 17"),
    ("src/trace/replay_spill.cc", "imageHeaderBytes == 24"),
    ("src/trace/replay_spill.cc", "imageSectionEntryBytes == 32"),
    ("src/trace/replay_spill.cc", "imageSectionCount == 4"),
]


def check_record_layout() -> list[str]:
    """src/trace must pin the on-disk sizes with static_asserts."""
    findings = []
    joined_by_file: dict[str, str] = {}
    for rel, required in RECORD_LAYOUT_ASSERTS:
        if rel not in joined_by_file:
            text = (REPO / rel).read_text(encoding="utf-8")
            asserts = re.findall(r"static_assert\s*\(([^;]*?)\)\s*;",
                                 text, re.DOTALL)
            joined_by_file[rel] = " ".join(asserts)
        if required not in joined_by_file[rel]:
            findings.append(
                f"{rel}: [record-layout] missing "
                f"static_assert({required}) tying the layout to "
                "docs/TRACE_FORMAT.md")
    return findings


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        print(__doc__, file=sys.stderr)
        return 2
    findings: list[str] = []
    for path in cxx_files():
        findings.extend(check_file(path))
    findings.extend(check_record_layout())
    for finding in findings:
        print(finding)
    if findings:
        print(f"check_conventions: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"check_conventions: OK ({len(cxx_files())} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
