#!/usr/bin/env python3
"""Tracked perf-regression harness around build/bench/bench_perf.

Runs the bench_perf binary (best-of-N timings for the figure suite's
hot paths: trace generation, the baseline L1 filter, one coverage
simulation per technique, and EIT update/lookup micro-ops), attaches
machine info, writes the result to BENCH_PERF.json, and compares
each cell's ns/op against the committed baseline.

The baseline file keeps one entry per trace length (``--n``):
per-cell fixed costs (table pre-sizing, prefetcher construction)
amortise over the trace, so ns/op is only comparable at equal n.

A cell slower than ``--threshold`` times its baseline ns/op fails
the run (exit 1) so a PR cannot silently regress the suite's
throughput; ``--update-baseline`` rewrites the baseline in place
after an intentional change (commit the new file alongside it).

``--compare`` prints a full per-cell delta table instead (signed
percentage against a ``--tolerance``, default 25 %, with new and
missing cells called out) and is report-only unless ``--enforce``
is passed -- the CI perf-smoke job runs it report-only so noisy
runners annotate rather than block.

Uses nothing but the standard library (the container ships no
Python packages).

Exit status: 0 OK, 1 regression found, 2 usage/run error.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_PERF.json"


def machine_info() -> dict:
    info = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": None,
        "cpu_model": None,
    }
    try:
        import os

        info["cpu_count"] = os.cpu_count()
    except Exception:
        pass
    try:
        for line in Path("/proc/cpuinfo").read_text().splitlines():
            if line.lower().startswith("model name"):
                info["cpu_model"] = line.split(":", 1)[1].strip()
                break
    except OSError:
        pass
    return info


def run_bench(binary: Path, n: int, seed: int, repeats: int,
              quick: bool) -> dict:
    cmd = [str(binary), "--n", str(n), "--seed", str(seed),
           "--repeats", str(repeats)]
    if quick:
        cmd.append("--quick")
    try:
        out = subprocess.run(cmd, check=True, capture_output=True,
                             text=True).stdout
    except FileNotFoundError:
        sys.exit(f"error: bench binary not found: {binary}\n"
                 "build it first: cmake --build <build-dir> "
                 "--target bench_perf")
    except subprocess.CalledProcessError as err:
        sys.exit(f"error: bench_perf failed (exit {err.returncode})"
                 f":\n{err.stderr}")
    return json.loads(out)


def compare(current: dict, baseline: dict,
            threshold: float) -> list[str]:
    """Return one message per regressed cell."""
    base_cells = {c["name"]: c for c in baseline.get("cells", [])}
    regressions = []
    for cell in current["cells"]:
        base = base_cells.get(cell["name"])
        if base is None or base["ns_per_op"] <= 0:
            continue
        ratio = cell["ns_per_op"] / base["ns_per_op"]
        marker = "REGRESSION" if ratio > threshold else "ok"
        print(f"  {cell['name']:28s} {base['ns_per_op']:9.1f} -> "
              f"{cell['ns_per_op']:9.1f} ns/op  "
              f"({ratio:5.2f}x)  {marker}")
        if ratio > threshold:
            regressions.append(
                f"{cell['name']}: {base['ns_per_op']:.1f} -> "
                f"{cell['ns_per_op']:.1f} ns/op "
                f"({ratio:.2f}x > {threshold:.2f}x)")
    return regressions


def delta_table(current: dict, baseline: dict,
                tolerance: float) -> list[str]:
    """Print a per-cell delta table; return regression messages.

    Unlike :func:`compare` (a multiplier threshold on matched cells),
    this reports every cell of either run: matched cells get a signed
    delta percentage against ``tolerance``, cells present on only one
    side are called out as ``new``/``missing`` so a renamed cell
    cannot silently drop out of regression tracking.
    """
    base_cells = {c["name"]: c for c in baseline.get("cells", [])}
    cur_cells = {c["name"]: c for c in current["cells"]}
    regressions = []
    print(f"  {'cell':30s} {'baseline':>10s} {'current':>10s} "
          f"{'delta':>8s}  status")
    for cell in current["cells"]:
        base = base_cells.get(cell["name"])
        if base is None:
            print(f"  {cell['name']:30s} {'-':>10s} "
                  f"{cell['ns_per_op']:10.1f} {'-':>8s}  new")
            continue
        if base["ns_per_op"] <= 0:
            continue
        delta = cell["ns_per_op"] / base["ns_per_op"] - 1.0
        if delta > tolerance:
            status = "REGRESSION"
            regressions.append(
                f"{cell['name']}: {base['ns_per_op']:.1f} -> "
                f"{cell['ns_per_op']:.1f} ns/op "
                f"(+{delta:.1%} > +{tolerance:.0%})")
        elif delta < -tolerance:
            status = "improved"
        else:
            status = "ok"
        print(f"  {cell['name']:30s} {base['ns_per_op']:10.1f} "
              f"{cell['ns_per_op']:10.1f} {delta:+8.1%}  {status}")
    for name in base_cells:
        if name not in cur_cells:
            print(f"  {name:30s} "
                  f"{base_cells[name]['ns_per_op']:10.1f} "
                  f"{'-':>10s} {'-':>8s}  missing")
            regressions.append(
                f"{name}: present in baseline but not measured")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--n", type=int, default=120_000,
                        help="accesses per cell (default: 120000)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best kept (default: 3)")
    parser.add_argument("--quick", action="store_true",
                        help="single repeat (CI smoke)")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="fail when a cell is this many times "
                             "slower than baseline (default: 1.5)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite BENCH_PERF.json instead of "
                             "comparing against it")
    parser.add_argument("--compare", action="store_true",
                        help="print a per-cell delta table against "
                             "the committed baseline (tolerance is "
                             "--tolerance, report-only unless "
                             "--enforce)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="--compare: flag cells this fraction "
                             "slower than baseline (default: 0.25)")
    parser.add_argument("--enforce", action="store_true",
                        help="--compare: exit 1 on flagged cells "
                             "instead of reporting only")
    parser.add_argument("--output", default=None,
                        help="where to write the measured JSON "
                             "(default: BENCH_PERF.json when "
                             "updating, else BENCH_PERF.local.json)")
    args = parser.parse_args()

    binary = (REPO_ROOT / args.build_dir / "bench" /
              "bench_perf")
    result = run_bench(binary, args.n, args.seed, args.repeats,
                       args.quick)
    result["machine"] = machine_info()

    if args.update_baseline:
        # Merge: one baseline entry per trace length.
        doc = {"baselines": {}}
        if BASELINE.exists():
            doc = json.loads(BASELINE.read_text())
            doc.setdefault("baselines", {})
        doc["baselines"][str(args.n)] = result
        out_path = Path(args.output) if args.output else BASELINE
        out_path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {out_path}")
        print("baseline updated; commit it with the change that "
              "moved the numbers")
        return 0

    out_path = (Path(args.output) if args.output
                else REPO_ROOT / "BENCH_PERF.local.json")
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")

    if not BASELINE.exists():
        print("no committed baseline (BENCH_PERF.json); nothing to "
              "compare against")
        return 0

    doc = json.loads(BASELINE.read_text())
    baseline = doc.get("baselines", {}).get(str(args.n))
    if baseline is None:
        print(f"no baseline entry for n={args.n} in {BASELINE}; "
              "record one with --update-baseline "
              f"--n {args.n} (ns/op is only comparable at equal n)")
        return 0
    if args.compare:
        print(f"comparing against {BASELINE} entry n={args.n} "
              f"(tolerance +{args.tolerance:.0%}"
              f"{', enforced' if args.enforce else ', report-only'}"
              "):")
        regressions = delta_table(result, baseline, args.tolerance)
        if regressions:
            print("\ncells beyond tolerance:")
            for msg in regressions:
                print(f"  {msg}")
            if args.enforce:
                return 1
            print("(report-only; pass --enforce to fail the run)")
            return 0
        print("all cells within tolerance")
        return 0
    print(f"comparing against {BASELINE} entry n={args.n} "
          f"(threshold {args.threshold:.2f}x):")
    regressions = compare(result, baseline, args.threshold)
    if regressions:
        print("\nperf regressions detected:")
        for msg in regressions:
            print(f"  {msg}")
        return 1
    print("no perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
