#!/usr/bin/env sh
# Static-analysis gate: clang-format (style drift), clang-tidy
# (config in .clang-tidy) over every translation unit, then the
# domlint rule engine (conventions + semantic + docs rules).  Used
# by CI's lint job and runnable locally; see docs/STATIC_ANALYSIS.md.
#
# Usage: scripts/lint.sh [build-dir]
#
#   build-dir   a configured CMake build tree to take
#               compile_commands.json from (default: build-lint,
#               configured on demand).
#
# Environment:
#
#   LINT_TIDY_MAJOR     required clang-tidy major version (default
#                       18, the ubuntu-latest CI pin).  A found tool
#                       of another major fails with a "version X
#                       required, found Y" diagnostic; set it to
#                       your local major to lint locally.
#   LINT_FORMAT_MAJOR   same pin for clang-format (default 18).
#
# The clang tools are optional at runtime (the benchmark containers
# ship only g++): when absent, their steps are SKIPPED with a notice
# and only domlint gates.  CI always installs them at the pinned
# major, so absence never hides findings from the gate.
#
# Every step runs even if an earlier one fails; the per-step exit
# codes are collected into a final PASS/FAIL summary table and the
# script exits non-zero if any step failed.
set -u

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo/build-lint"}
tidy_major=${LINT_TIDY_MAJOR:-18}
format_major=${LINT_FORMAT_MAJOR:-18}

# Step ledger: names and statuses accumulate in parallel strings
# (POSIX sh has no arrays).
step_names=""
step_stats=""
fail=0

record() { # record <name> <PASS|FAIL|SKIP>
    step_names="$step_names $1"
    step_stats="$step_stats $2"
    [ "$2" = "FAIL" ] && fail=1
    return 0
}

# find_tool <base> <major> -> prints the tool path, or nothing.
# Prefers <base>-<major>; accepts an unsuffixed <base> only if its
# reported major matches the pin, failing loudly otherwise.
find_tool() {
    base=$1
    major=$2
    if command -v "$base-$major" > /dev/null 2>&1; then
        echo "$base-$major"
        return 0
    fi
    if command -v "$base" > /dev/null 2>&1; then
        found=$("$base" --version |
            sed -n 's/.*version \([0-9][0-9]*\)\..*/\1/p' |
            head -n 1)
        if [ "$found" = "$major" ]; then
            echo "$base"
            return 0
        fi
        echo "lint.sh: ERROR: $base version $major required," \
             "found ${found:-unknown} (set LINT_${3}_MAJOR to" \
             "override the pin)" >&2
        echo "MISMATCH"
        return 0
    fi
    return 0
}

# ------------------------------------------------------------------
# Step 1: clang-format (style drift over tracked C++ sources).
format_tool=$(find_tool clang-format "$format_major" FORMAT)
if [ "$format_tool" = "MISMATCH" ]; then
    record clang-format FAIL
elif [ -n "$format_tool" ]; then
    echo "lint.sh: running $format_tool --dry-run"
    # shellcheck disable=SC2046 -- one path per line, no whitespace.
    if "$format_tool" --dry-run -Werror $(
        find "$repo/src" "$repo/bench" "$repo/tests" "$repo/examples" \
             "$repo/fuzz" -name '*.cc' -o -name '*.cpp' -o -name '*.h' \
            | grep -v lint_fixtures | sort); then
        record clang-format PASS
    else
        record clang-format FAIL
    fi
else
    echo "lint.sh: NOTICE: clang-format not found; skipping (CI" \
         "runs it at major $format_major)"
    record clang-format SKIP
fi

# ------------------------------------------------------------------
# Step 2: clang-tidy over every translation unit.
tidy_tool=$(find_tool clang-tidy "$tidy_major" TIDY)
if [ "$tidy_tool" = "MISMATCH" ]; then
    record clang-tidy FAIL
elif [ -n "$tidy_tool" ]; then
    if [ ! -f "$build_dir/compile_commands.json" ]; then
        echo "lint.sh: configuring $build_dir for compile_commands"
        cmake -B "$build_dir" -S "$repo" \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
    fi
    echo "lint.sh: running $tidy_tool over src/ bench/ tests/" \
         "examples/"
    # shellcheck disable=SC2046 -- one path per line, no whitespace.
    # The committed known-bad trees under tests/lint_fixtures are
    # fixtures for domlint's self-test, not real code: exclude them.
    if "$tidy_tool" -p "$build_dir" --quiet $(
        find "$repo/src" "$repo/bench" "$repo/tests" "$repo/examples" \
            -name '*.cc' -o -name '*.cpp' | grep -v lint_fixtures |
            sort); then
        record clang-tidy PASS
    else
        record clang-tidy FAIL
    fi
else
    echo "lint.sh: NOTICE: clang-tidy not found; skipping (CI runs" \
         "it at major $tidy_major)"
    record clang-tidy SKIP
fi

# ------------------------------------------------------------------
# Step 3: the domlint rule engine, self-test first (the fixtures
# prove every rule still catches its known-bad tree), then the real
# tree with all rule groups.
if python3 "$repo/scripts/domlint/selftest.py"; then
    record domlint-selftest PASS
else
    record domlint-selftest FAIL
fi
if python3 "$repo/scripts/domlint"; then
    record domlint PASS
else
    record domlint FAIL
fi

# ------------------------------------------------------------------
# Summary table.
echo
echo "lint.sh: summary"
echo "  ----------------------------"
set -- $step_names
for status in $step_stats; do
    printf '  %-18s %s\n' "$1" "$status"
    shift
done
echo "  ----------------------------"
if [ "$fail" -ne 0 ]; then
    echo "lint.sh: FAILED"
    exit 1
fi
echo "lint.sh: OK"
