#!/usr/bin/env sh
# Static-analysis gate: clang-tidy (config in .clang-tidy) over every
# translation unit, then the repo-convention lint and the docs
# cross-reference lint.  Used by CI's lint job and runnable locally;
# see docs/STATIC_ANALYSIS.md.
#
# Usage: scripts/lint.sh [build-dir]
#
#   build-dir   a configured CMake build tree to take
#               compile_commands.json from (default: build-lint,
#               configured on demand).
#
# clang-tidy is optional at runtime (the benchmark containers ship
# only g++): when absent, the clang-tidy phase is SKIPPED with a
# notice and only the convention lint gates.  CI always installs
# clang-tidy, so absence never hides findings from the gate.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo/build-lint"}

tidy=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 \
                 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
    if command -v "$candidate" > /dev/null 2>&1; then
        tidy=$candidate
        break
    fi
done

if [ -n "$tidy" ]; then
    if [ ! -f "$build_dir/compile_commands.json" ]; then
        echo "lint.sh: configuring $build_dir for compile_commands"
        cmake -B "$build_dir" -S "$repo" \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
    fi
    echo "lint.sh: running $tidy over src/ bench/ tests/ examples/"
    # shellcheck disable=SC2046 -- the file list is one per line and
    # none of the repo's paths contain whitespace.
    "$tidy" -p "$build_dir" --quiet $(
        find "$repo/src" "$repo/bench" "$repo/tests" "$repo/examples" \
            -name '*.cc' -o -name '*.cpp' | sort)
    echo "lint.sh: clang-tidy clean"
else
    echo "lint.sh: NOTICE: clang-tidy not found; skipping the" \
         "static-analysis phase (CI runs it)"
fi

python3 "$repo/scripts/check_conventions.py"
python3 "$repo/scripts/check_docs.py"
echo "lint.sh: OK"
