#!/usr/bin/env python3
"""Multi-process sharded driver for the figure harnesses.

Fans one harness binary over K cooperating processes
(``--shards K --shard i`` each) and merges their CSV outputs back
into the canonical unsharded row order.  Sharding partitions the
*workload axis*: shard i owns the workloads w with w % K == i (see
runner::ShardSpec in src/runner/experiment_grid.h), so each process
generates and replays only its own workloads -- the multi-machine /
multi-container scale-out story that complements in-process --jobs
threading.

Merge semantics: a harness CSV is a header row, per-workload groups
of consecutive rows (first field = workload name), and trailing
summary rows ("Average", "GMean").  Workload group g of the
canonical order lives in shard g % K at group position g // K; the
merger round-robins the groups back together.  Summary rows are
*dropped* -- each shard's summary covers only its own workloads, and
per-row values are bit-identical to the unsharded run (rep-0 seeding
is positional), so consumers recompute summaries from the merged
rows if needed.  CI pins the equality:

    run_sharded.py --shards 2 -- build/bench/bench_fig11_coverage_deg1 --n ...
  ==
    build/bench/bench_fig11_coverage_deg1 --n ... --csv | grep -v '^Average'

Uses nothing but the standard library (the container ships no
Python packages).

Exit status: 0 OK, 1 a shard failed, 2 usage error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import subprocess
import sys

#: First-field labels of shard-local summary rows (dropped on merge).
SUMMARY_LABELS = {"Average", "GMean"}


def run_shard(cmd: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(cmd, capture_output=True, text=True)


def split_groups(csv_text: str) -> tuple[str, list[list[str]]]:
    """Split a harness CSV into (header, workload row groups).

    Consecutive rows sharing their first field form one group;
    summary rows are dropped.
    """
    lines = [ln for ln in csv_text.splitlines() if ln]
    if not lines:
        return "", []
    header, body = lines[0], lines[1:]
    groups: list[list[str]] = []
    current_key = None
    for row in body:
        key = row.split(",", 1)[0]
        if key in SUMMARY_LABELS:
            current_key = None
            continue
        if key != current_key:
            groups.append([])
            current_key = key
        groups[-1].append(row)
    return header, groups


def merge(outputs: list[str]) -> str:
    """Round-robin the shards' workload groups back into canonical
    order (group g comes from shard g % K, position g // K)."""
    headers_and_groups = [split_groups(text) for text in outputs]
    header = next((h for h, _ in headers_and_groups if h), "")
    for h, _ in headers_and_groups:
        if h and h != header:
            raise ValueError("shard outputs disagree on the CSV "
                             "header; did the shards run the same "
                             "harness and flags?")
    shard_groups = [groups for _, groups in headers_and_groups]
    merged: list[str] = [header] if header else []
    total = sum(len(groups) for groups in shard_groups)
    for g in range(total):
        groups = shard_groups[g % len(shard_groups)]
        position = g // len(shard_groups)
        if position >= len(groups):
            raise ValueError(
                f"shard {g % len(shard_groups)} is missing workload "
                f"group {position}; uneven or truncated shard output")
        merged.extend(groups[position])
    return "\n".join(merged) + ("\n" if merged else "")


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        usage="%(prog)s --shards K [--out FILE] -- "
              "HARNESS [HARNESS_ARGS...]")
    parser.add_argument("--shards", type=int, required=True,
                        help="number of cooperating shard processes")
    parser.add_argument("--out", default="",
                        help="write the merged CSV here "
                             "(default: stdout)")
    parser.add_argument("command", nargs=argparse.REMAINDER,
                        help="harness command line (prefix with --)")
    args = parser.parse_args()

    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        parser.error("missing harness command (after --)")
    if args.shards < 1:
        parser.error("--shards must be at least 1")

    # Each shard is one process; --csv makes the output mergeable
    # and --shards/--shard restrict its workload list.
    cmds = [command + ["--csv", "--shards", str(args.shards),
                       "--shard", str(i)]
            for i in range(args.shards)]
    with concurrent.futures.ThreadPoolExecutor(args.shards) as pool:
        procs = list(pool.map(run_shard, cmds))

    failed = False
    for i, proc in enumerate(procs):
        if proc.returncode != 0:
            failed = True
            sys.stderr.write(
                f"run_sharded: shard {i} exited "
                f"{proc.returncode}:\n{proc.stderr}")
    if failed:
        return 1

    try:
        text = merge([p.stdout for p in procs])
    except ValueError as err:
        sys.stderr.write(f"run_sharded: {err}\n")
        return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
