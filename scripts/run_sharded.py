#!/usr/bin/env python3
"""Multi-process sharded driver for the figure harnesses.

Fans one harness binary over K cooperating processes
(``--shards K --shard i`` each) and merges their CSV outputs back
into the canonical unsharded row order.  Sharding partitions the
*workload axis*: shard i owns the workloads w with w % K == i (see
runner::ShardSpec in src/runner/experiment_grid.h), so each process
generates and replays only its own workloads -- the multi-machine /
multi-container scale-out story that complements in-process --jobs
threading.

Merge semantics: a harness CSV is a header row, per-workload groups
of consecutive rows (first field = workload name), and trailing
summary rows ("Average", "GMean").  Workload group g of the
canonical order lives in shard g % K at group position g // K; the
merger round-robins the groups back together.  Summary rows are
*dropped* -- each shard's summary covers only its own workloads, and
per-row values are bit-identical to the unsharded run (rep-0 seeding
is positional), so consumers recompute summaries from the merged
rows if needed.  CI pins the equality:

    run_sharded.py --shards 2 -- build/bench/bench_fig11_coverage_deg1 --n ...
  ==
    build/bench/bench_fig11_coverage_deg1 --n ... --csv | grep -v '^Average'

Manifest mode decouples the three steps so the shards can run on
*different machines* (a CI matrix, a second box) and be merged
later:

    run_sharded.py --shards 2 --manifest jobs.json -- HARNESS ARGS...
        writes a JSON manifest: one job per shard with its full argv
        and the output file it must produce (no execution).
    run_sharded.py --execute jobs.json [--only i]
        runs the manifest's jobs (or just shard i) on this machine,
        writes each shard's CSV next to the manifest, and stamps its
        SHA-256 into the manifest -- the *expected output checksum*.
        Because per-row values are bit-identical across machines
        (positional seeding), every executor must stamp the same
        hash for the same shard.
    run_sharded.py --merge jobs.json [--out FILE]
        re-hashes every output file against its stamp (catching a
        truncated copy or a divergent executor), then merges exactly
        like the one-shot mode.

Uses nothing but the standard library (the container ships no
Python packages).

Exit status: 0 OK, 1 a shard failed, 2 usage error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import hashlib
import json
import os
import subprocess
import sys

#: First-field labels of shard-local summary rows (dropped on merge).
SUMMARY_LABELS = {"Average", "GMean"}


def run_shard(cmd: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(cmd, capture_output=True, text=True)


def split_groups(csv_text: str) -> tuple[str, list[list[str]]]:
    """Split a harness CSV into (header, workload row groups).

    Consecutive rows sharing their first field form one group;
    summary rows are dropped.
    """
    lines = [ln for ln in csv_text.splitlines() if ln]
    if not lines:
        return "", []
    header, body = lines[0], lines[1:]
    groups: list[list[str]] = []
    current_key = None
    for row in body:
        key = row.split(",", 1)[0]
        if key in SUMMARY_LABELS:
            current_key = None
            continue
        if key != current_key:
            groups.append([])
            current_key = key
        groups[-1].append(row)
    return header, groups


def merge(outputs: list[str]) -> str:
    """Round-robin the shards' workload groups back into canonical
    order (group g comes from shard g % K, position g // K)."""
    headers_and_groups = [split_groups(text) for text in outputs]
    header = next((h for h, _ in headers_and_groups if h), "")
    for h, _ in headers_and_groups:
        if h and h != header:
            raise ValueError("shard outputs disagree on the CSV "
                             "header; did the shards run the same "
                             "harness and flags?")
    shard_groups = [groups for _, groups in headers_and_groups]
    merged: list[str] = [header] if header else []
    total = sum(len(groups) for groups in shard_groups)
    for g in range(total):
        groups = shard_groups[g % len(shard_groups)]
        position = g // len(shard_groups)
        if position >= len(groups):
            raise ValueError(
                f"shard {g % len(shard_groups)} is missing workload "
                f"group {position}; uneven or truncated shard output")
        merged.extend(groups[position])
    return "\n".join(merged) + ("\n" if merged else "")


def shard_argv(command: list[str], shards: int, i: int) -> list[str]:
    """The full argv of shard i: --csv makes the output mergeable
    and --shards/--shard restrict its workload list."""
    return command + ["--csv", "--shards", str(shards),
                      "--shard", str(i)]


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def load_manifest(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    jobs = manifest.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        raise ValueError(f"{path}: no jobs in manifest")
    for job in jobs:
        for field in ("shard", "argv", "output"):
            if field not in job:
                raise ValueError(
                    f"{path}: job missing '{field}' field")
    return manifest


def job_output_path(manifest_path: str, job: dict) -> str:
    """Output files live next to the manifest, so the whole bundle
    (manifest + shard CSVs) can be copied between machines as one
    directory."""
    return os.path.join(os.path.dirname(os.path.abspath(
        manifest_path)), job["output"])


def emit_manifest(path: str, command: list[str],
                  shards: int) -> None:
    stem = os.path.splitext(os.path.basename(path))[0]
    manifest = {
        "shards": shards,
        "command": command,
        "jobs": [
            {
                "shard": i,
                "argv": shard_argv(command, shards, i),
                "output": f"{stem}.shard{i}.csv",
                # Filled by --execute: the SHA-256 of the shard's
                # CSV.  Deterministic output means every machine
                # that runs this job must produce this exact hash.
                "sha256": None,
            }
            for i in range(shards)
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)
        fh.write("\n")


def execute_manifest(path: str, only: int | None) -> int:
    manifest = load_manifest(path)
    jobs = [j for j in manifest["jobs"]
            if only is None or j["shard"] == only]
    if not jobs:
        sys.stderr.write(
            f"run_sharded: no job for shard {only} in {path}\n")
        return 1
    with concurrent.futures.ThreadPoolExecutor(len(jobs)) as pool:
        procs = list(pool.map(run_shard,
                              [j["argv"] for j in jobs]))
    for job, proc in zip(jobs, procs):
        if proc.returncode != 0:
            sys.stderr.write(
                f"run_sharded: shard {job['shard']} exited "
                f"{proc.returncode}:\n{proc.stderr}")
            return 1
        out_path = job_output_path(path, job)
        with open(out_path, "w", encoding="utf-8") as fh:
            fh.write(proc.stdout)
        digest = sha256_text(proc.stdout)
        if job.get("sha256") not in (None, digest):
            sys.stderr.write(
                f"run_sharded: shard {job['shard']} produced "
                f"{digest}, but the manifest expected "
                f"{job['sha256']} -- non-deterministic harness or "
                f"mismatched build?\n")
            return 1
        job["sha256"] = digest
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)
        fh.write("\n")
    return 0


def merge_manifest(path: str, out: str) -> int:
    manifest = load_manifest(path)
    outputs: list[str] = []
    for job in sorted(manifest["jobs"], key=lambda j: j["shard"]):
        out_path = job_output_path(path, job)
        if job.get("sha256") is None:
            sys.stderr.write(
                f"run_sharded: shard {job['shard']} was never "
                f"executed (no checksum stamp in {path})\n")
            return 1
        try:
            with open(out_path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as err:
            sys.stderr.write(f"run_sharded: {err}\n")
            return 1
        digest = sha256_text(text)
        if digest != job["sha256"]:
            sys.stderr.write(
                f"run_sharded: {out_path} hashes to {digest}, "
                f"expected {job['sha256']} -- truncated copy or "
                f"divergent executor\n")
            return 1
        outputs.append(text)
    try:
        text = merge(outputs)
    except ValueError as err:
        sys.stderr.write(f"run_sharded: {err}\n")
        return 1
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        usage="%(prog)s --shards K [--out FILE] "
              "[--manifest FILE | --execute FILE | --merge FILE] "
              "[-- HARNESS [HARNESS_ARGS...]]")
    parser.add_argument("--shards", type=int, default=0,
                        help="number of cooperating shard processes")
    parser.add_argument("--out", default="",
                        help="write the merged CSV here "
                             "(default: stdout)")
    parser.add_argument("--manifest", default="",
                        help="write a per-shard job manifest here "
                             "instead of executing")
    parser.add_argument("--execute", default="",
                        help="run the jobs of this manifest and "
                             "stamp output checksums")
    parser.add_argument("--only", type=int, default=None,
                        help="with --execute: run just this shard "
                             "(CI-matrix / second-machine use)")
    parser.add_argument("--merge", default="",
                        help="verify this manifest's executed "
                             "outputs and merge them")
    parser.add_argument("command", nargs=argparse.REMAINDER,
                        help="harness command line (prefix with --)")
    args = parser.parse_args()

    modes = [bool(args.manifest), bool(args.execute),
             bool(args.merge)]
    if sum(modes) > 1:
        parser.error("--manifest, --execute, and --merge are "
                     "mutually exclusive")

    if args.execute:
        try:
            return execute_manifest(args.execute, args.only)
        except ValueError as err:
            sys.stderr.write(f"run_sharded: {err}\n")
            return 1
    if args.merge:
        try:
            return merge_manifest(args.merge, args.out)
        except ValueError as err:
            sys.stderr.write(f"run_sharded: {err}\n")
            return 1

    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        parser.error("missing harness command (after --)")
    if args.shards < 1:
        parser.error("--shards must be at least 1")

    if args.manifest:
        emit_manifest(args.manifest, command, args.shards)
        return 0

    # One-shot mode: run every shard here, merge in memory.
    cmds = [shard_argv(command, args.shards, i)
            for i in range(args.shards)]
    with concurrent.futures.ThreadPoolExecutor(args.shards) as pool:
        procs = list(pool.map(run_shard, cmds))

    failed = False
    for i, proc in enumerate(procs):
        if proc.returncode != 0:
            failed = True
            sys.stderr.write(
                f"run_sharded: shard {i} exited "
                f"{proc.returncode}:\n{proc.stderr}")
    if failed:
        return 1

    try:
        text = merge([p.stdout for p in procs])
    except ValueError as err:
        sys.stderr.write(f"run_sharded: {err}\n")
        return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
