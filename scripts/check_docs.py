#!/usr/bin/env python3
"""Documentation cross-reference lint for the Domino reproduction.

The docs name files, CLI flags, and each other's sections; all three
decay silently as the code moves.  This lint re-derives every such
reference and fails when one dangles, using nothing but the standard
library (the container ships no Python packages):

  file-ref      every `path/like.this` written in backticks in
                README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md,
                CONTRIBUTING.md, and docs/*.md must exist in the
                repo.  Directory refs (`src/trace/`) and glob refs
                (`build/bench/bench_fig*`) resolve too.
  flag-ref      every `--flag` a doc mentions must appear in a C++
                source or script (the flag vocabulary is grep-able:
                args.get*("flag"), add_argument("--flag")).
  section-ref   every "DESIGN.md §N" / "see §N" style pointer into a
                numbered doc must name a section that exists there
                (sections are `## N. Title` headings).
  md-link       every relative markdown link target `[x](path)` must
                exist.

Exit status: 0 clean, 1 findings, 2 usage error.
See docs/STATIC_ANALYSIS.md for policy; run via scripts/lint.sh.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Docs whose references are checked.
DOC_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CONTRIBUTING.md",
    "PAPER.md",
]

#: Backticked tokens that look like repo paths: at least one `/` and
#: a sane path alphabet.  `<...>` placeholders and URLs are skipped.
FILE_REF_RE = re.compile(r"`([A-Za-z0-9_.][A-Za-z0-9_./*-]*/"
                         r"[A-Za-z0-9_./*-]*)`")

#: `--flag` mentions in docs (value suffixes like `--n 120000` are
#: split off by the word boundary).
FLAG_REF_RE = re.compile(r"`--([a-z][a-z0-9-]*)")

#: Cross-doc section pointers: "DESIGN.md §7" or "(§7)" /
#: "see §7" (the latter resolve against the doc they appear in).
SECTION_REF_RE = re.compile(r"(?:(?P<doc>[A-Z_]+\.md)\s*)?§\s*(?P<num>\d+)")

#: Relative markdown link targets.
MD_LINK_RE = re.compile(r"\]\(([^)#`\s]+)(?:#[^)\s]*)?\)")

#: Numbered `## N. Title` headings.
SECTION_HEADING_RE = re.compile(r"^##\s+(\d+)\.", re.MULTILINE)

#: Where CLI flags are defined: C++ args lookups and python argparse.
FLAG_DEF_RES = [
    re.compile(r'args\.(?:get|getU64|getDouble|getBool|has)\s*\(\s*"'
               r'([a-z][a-z0-9-]*)"'),
    re.compile(r'add_argument\(\s*"--([a-z][a-z0-9-]*)"'),
    re.compile(r'"--([a-z][a-z0-9-]*)"'),
]

#: Flags documented but owned by external tools (cmake, ctest, git,
#: compilers); not expected in repo sources.
EXTERNAL_FLAGS = {
    "build", "parallel", "output-on-failure", "target", "config",
    "branch", "version",
}


def doc_paths() -> list[Path]:
    docs = [REPO / name for name in DOC_FILES]
    docs.extend(sorted((REPO / "docs").glob("*.md")))
    return [d for d in docs if d.is_file()]


def known_flags() -> set[str]:
    flags: set[str] = set()
    roots = [REPO / "src", REPO / "bench", REPO / "tests",
             REPO / "scripts", REPO / "examples"]
    for root in roots:
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in {".cc", ".h", ".py", ".sh"}:
                continue
            text = path.read_text(encoding="utf-8", errors="replace")
            for pattern in FLAG_DEF_RES:
                flags.update(pattern.findall(text))
    return flags


#: First path segments that name generated trees: present after a
#: build / a run, never in a fresh checkout, so not checkable.
GENERATED_PREFIXES = ("build", ".domino-spill")


def resolve_path_ref(ref: str) -> bool:
    """True when a backticked path ref names something real."""
    ref = ref.rstrip("/")
    if ref.split("/")[0].startswith(GENERATED_PREFIXES):
        return True
    if "*" in ref:
        return any(REPO.glob(ref))
    return (REPO / ref).exists()


def sections_of(doc: Path) -> set[int]:
    text = doc.read_text(encoding="utf-8")
    return {int(m) for m in SECTION_HEADING_RE.findall(text)}


def check_doc(doc: Path, flags: set[str],
              sections: dict[str, set[int]]) -> list[str]:
    rel = doc.relative_to(REPO)
    findings = []
    text = doc.read_text(encoding="utf-8")
    in_code_block = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_block = not in_code_block
            continue

        for match in FILE_REF_RE.finditer(line):
            ref = match.group(1)
            if ref.startswith(("http", "<")) or ref.endswith("/..."):
                continue
            if not resolve_path_ref(ref):
                findings.append(
                    f"{rel}:{lineno}: [file-ref] `{ref}` does not "
                    "exist in the repo")

        for match in FLAG_REF_RE.finditer(line):
            flag = match.group(1)
            if flag in EXTERNAL_FLAGS:
                continue
            if flag not in flags:
                findings.append(
                    f"{rel}:{lineno}: [flag-ref] `--{flag}` is not "
                    "parsed by any source or script")

        for match in SECTION_REF_RE.finditer(line):
            target = match.group("doc") or doc.name
            num = int(match.group("num"))
            if target not in sections:
                continue  # not a numbered doc we track
            if num not in sections[target]:
                findings.append(
                    f"{rel}:{lineno}: [section-ref] {target} has no "
                    f"section {num}")

        if not in_code_block:
            for match in MD_LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(("http", "mailto:")):
                    continue
                resolved = (doc.parent / target).resolve()
                if not resolved.exists():
                    findings.append(
                        f"{rel}:{lineno}: [md-link] broken link "
                        f"target `{target}`")
    return findings


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        print(__doc__, file=sys.stderr)
        return 2
    docs = doc_paths()
    flags = known_flags()
    sections = {doc.name: sections_of(doc) for doc in docs}
    findings: list[str] = []
    for doc in docs:
        findings.extend(check_doc(doc, flags, sections))
    for finding in findings:
        print(finding)
    if findings:
        print(f"check_docs: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"check_docs: OK ({len(docs)} docs, {len(flags)} known "
          "flags)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
